#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/transport.hpp"
#include "util/timer.hpp"

namespace gbsp {

namespace detail {

Worker*& current_worker_slot() {
  thread_local Worker* slot = nullptr;
  return slot;
}

}  // namespace detail

int Worker::nprocs() const { return rt_->config().nprocs; }
const Config& Worker::config() const { return rt_->config(); }

void Worker::require_outside_window(const char* what) const {
  if (state_->overlap_active) {
    throw std::logic_error(
        "gbsp: worker " + std::to_string(state_->pid) + " called " + what +
        " inside a split-phase window (between sync_begin() and sync_end())");
  }
}

void Worker::send_bytes(int dest, const void* data, std::size_t n) {
  detail::WorkerState& st = *state_;
  const Config& cfg = rt_->config();
  require_outside_window("send()");
  if (dest < 0 || dest >= cfg.nprocs) {
    throw std::out_of_range("gbsp: send to invalid processor " +
                            std::to_string(dest));
  }
  rt_->transport_->stage_send(st, dest, data, n);

  const std::uint64_t pkts = packets_for_bytes(n, cfg.packet_unit_bytes);
  st.sent_packets += pkts;
  st.sent_bytes += n;
  st.sent_messages += 1;
  if (cfg.collect_comm_matrix) {
    st.sent_to[static_cast<std::size_t>(dest)] += pkts;
  }
}

std::byte* Worker::send_reserve(int dest, std::size_t n) {
  detail::WorkerState& st = *state_;
  const Config& cfg = rt_->config();
  require_outside_window("send_reserve()");
  if (dest < 0 || dest >= cfg.nprocs) {
    throw std::out_of_range("gbsp: send to invalid processor " +
                            std::to_string(dest));
  }
  std::byte* slot = rt_->transport_->stage_reserve(st, dest, n);

  const std::uint64_t pkts = packets_for_bytes(n, cfg.packet_unit_bytes);
  st.sent_packets += pkts;
  st.sent_bytes += n;
  st.sent_messages += 1;
  if (cfg.collect_comm_matrix) {
    st.sent_to[static_cast<std::size_t>(dest)] += pkts;
  }
  return slot;
}

void Worker::sync() { rt_->do_sync(*state_); }

void Worker::sync_begin() { rt_->do_sync_begin(*state_); }

bool Worker::sync_progress() { return rt_->do_sync_progress(*state_); }

void Worker::sync_end() { rt_->do_sync_end(*state_); }

const Message* Worker::get_message() {
  detail::WorkerState& st = *state_;
  require_outside_window("get_message()");
  if (st.inbox_cursor >= st.inbox.size()) return nullptr;
  return &st.inbox[st.inbox_cursor++];
}

bool Worker::resumed() const { return rt_->resume_step_ >= 0; }

std::uint64_t Worker::resume_superstep() const {
  return rt_->resume_step_ >= 0
             ? static_cast<std::uint64_t>(rt_->resume_step_)
             : 0;
}

void Worker::register_checkpoint_region(void* base, std::size_t bytes) {
  detail::WorkerState& st = *state_;
  const std::size_t index = st.ckpt_regions.size();
  st.ckpt_regions.push_back(
      {static_cast<std::byte*>(base), bytes});
  if (rt_->resume_step_ >= 0) {
    rt_->recovery_.restore_region(
        st.pid, static_cast<std::uint64_t>(rt_->resume_step_), index,
        static_cast<std::byte*>(base), bytes);
  }
}

void Worker::set_checkpoint_state(
    std::function<void(std::vector<std::byte>&)> save,
    std::function<void(const std::byte*, std::size_t)> restore) {
  detail::WorkerState& st = *state_;
  st.ckpt_save = std::move(save);
  st.ckpt_restore = std::move(restore);
  if (rt_->resume_step_ >= 0 && st.ckpt_restore) {
    const std::vector<std::byte>& blob = rt_->recovery_.user_state(
        st.pid, static_cast<std::uint64_t>(rt_->resume_step_));
    st.ckpt_restore(blob.data(), blob.size());
  }
}

// ------------------------------------------------------------------- Runtime

Runtime::Runtime(Config cfg) : cfg_(cfg) {
  validate_config(cfg_);
  transport_ = make_transport(cfg_, pool_, &abort_);
}

Runtime::~Runtime() = default;

void Runtime::begin_work_slice(detail::WorkerState& st) {
  st.work_start_ns = ThreadCpuTimer::now_ns();
}

void Runtime::record_step(detail::WorkerState& st) {
  WorkerStepRecord r;
  r.work_us =
      static_cast<double>(ThreadCpuTimer::now_ns() - st.work_start_ns) * 1e-3;
  r.recv_packets = st.pending_recv_packets;
  st.pending_recv_packets = 0;
  r.recv_messages = st.pending_recv_messages;
  st.pending_recv_messages = 0;
  // Wire bytes accrue during the exchange that opened this superstep, so
  // they are charged — like recv_packets — to the superstep being recorded.
  r.wire_bytes = st.wire_bytes;
  st.wire_bytes = 0;
  r.wire_syscalls = st.wire_syscalls;
  st.wire_syscalls = 0;
  r.wire_zc_bytes = st.wire_zc_bytes;
  st.wire_zc_bytes = 0;
  r.sent_packets = st.sent_packets;
  r.sent_bytes = st.sent_bytes;
  r.sent_messages = st.sent_messages;
  if (cfg_.collect_comm_matrix) {
    r.sent_to_packets = st.sent_to;
    std::fill(st.sent_to.begin(), st.sent_to.end(), 0);
  }
  // Fault/recovery accounting: faults injected during the exchange that
  // opened this superstep, plus the cost of the checkpoint taken at its top
  // (or of the restore that recreated it).
  r.injected_faults = st.injected_faults;
  st.injected_faults = 0;
  r.checkpoint_bytes = st.checkpoint_bytes;
  st.checkpoint_bytes = 0;
  r.checkpoint_us = st.checkpoint_us;
  st.checkpoint_us = 0.0;
  r.restore_us = st.restore_us;
  st.restore_us = 0.0;
  // Split-phase window that opened this superstep (set by the previous
  // do_sync_end): charged like the wire traffic it overlapped.
  r.overlap_us = st.overlap_us;
  st.overlap_us = 0.0;
  r.overlap_wire_bytes = st.overlap_wire_bytes;
  st.overlap_wire_bytes = 0;
  st.trace.push_back(std::move(r));
  st.sent_packets = 0;
  st.sent_bytes = 0;
  st.sent_messages = 0;
}

void Runtime::do_sync(detail::WorkerState& st) {
  if (st.overlap_active) {
    throw std::logic_error(
        "gbsp: worker " + std::to_string(st.pid) +
        " called sync() inside a split-phase window; use sync_end()");
  }
  if (abort_.load(std::memory_order_acquire)) throw BspAborted{};
  record_step(st);
  transport_->flush(st);
  if (cfg_.scheduling == Scheduling::Serialized) {
    scheduler_->yield_at_sync(st.pid);  // transport exchange ran inside
  } else if (transport_->needs_boundary_barriers()) {
    barrier_a_->arrive_and_wait(st.pid);
    transport_->deliver_to(st);
    barrier_b_->arrive_and_wait(st.pid);
  } else {
    // Self-synchronising transport: deliver_to blocks until every peer's
    // data for this boundary has arrived — the exchange is the barrier.
    transport_->deliver_to(st);
  }
  st.superstep += 1;
  progress_.fetch_add(1, std::memory_order_relaxed);
  // The boundary just crossed is a consistent cut: every message sent before
  // it has been delivered, none sent after it exists yet. Snapshot here —
  // at the top of the new superstep — so a restore replays from exactly
  // this point.
  if (cfg_.checkpoint_every != 0 &&
      st.superstep % cfg_.checkpoint_every == 0) {
    recovery_.checkpoint(st);
  }
  begin_work_slice(st);
}

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Runtime::do_sync_begin(detail::WorkerState& st) {
  if (st.overlap_active) {
    throw std::logic_error(
        "gbsp: worker " + std::to_string(st.pid) +
        " called sync_begin() twice without an intervening sync_end()");
  }
  if (abort_.load(std::memory_order_acquire)) throw BspAborted{};
  // Snapshot the wire counters before the transport moves anything, so
  // sync_end can re-charge the window's traffic to the superstep the
  // boundary opens (the rigid path's charging rule).
  st.overlap_wire_base = st.wire_bytes;
  st.overlap_syscall_base = st.wire_syscalls;
  if (cfg_.scheduling == Scheduling::Serialized) {
    // One thread at a time: the exchange runs inside the scheduler at
    // sync_end, exactly like a rigid boundary. The window still measures the
    // caller's overlappable compute, so Serialized traces stay comparable.
    transport_->flush(st);
  } else {
    transport_->begin_exchange(st);
  }
  st.overlap_active = true;
  st.overlap_start_ns = steady_now_ns();
}

bool Runtime::do_sync_progress(detail::WorkerState& st) {
  if (!st.overlap_active) return false;
  if (abort_.load(std::memory_order_acquire)) throw BspAborted{};
  if (cfg_.scheduling == Scheduling::Serialized) return false;
  return transport_->progress(st);
}

void Runtime::do_sync_end(detail::WorkerState& st) {
  if (!st.overlap_active) {
    throw std::logic_error("gbsp: worker " + std::to_string(st.pid) +
                           " called sync_end() without a matching "
                           "sync_begin()");
  }
  if (abort_.load(std::memory_order_acquire)) throw BspAborted{};
  const double window_us =
      static_cast<double>(steady_now_ns() - st.overlap_start_ns) * 1e-3;
  // Wire traffic that moved during the window belongs — like every exchange
  // counter — to the superstep this boundary opens. Park it below the
  // sync_begin snapshot while record_step closes the *ending* superstep,
  // then restore it for the next record.
  const std::uint64_t window_wire = st.wire_bytes - st.overlap_wire_base;
  const std::uint64_t window_calls =
      st.wire_syscalls - st.overlap_syscall_base;
  st.wire_bytes = st.overlap_wire_base;
  st.wire_syscalls = st.overlap_syscall_base;
  record_step(st);  // includes the window's compute in this step's work_us
  st.wire_bytes = window_wire;
  st.wire_syscalls = window_calls;
  st.overlap_us = window_us;
  st.overlap_wire_bytes = window_wire;
  st.overlap_active = false;
  if (cfg_.scheduling == Scheduling::Serialized) {
    scheduler_->yield_at_sync(st.pid);  // transport exchange ran inside
  } else if (transport_->needs_boundary_barriers()) {
    // Same placement as a rigid boundary: every worker sealed its sends at
    // its own sync_begin, so once all arrive here the senders are quiescent.
    barrier_a_->arrive_and_wait(st.pid);
    transport_->finish_exchange(st);
    barrier_b_->arrive_and_wait(st.pid);
  } else {
    transport_->finish_exchange(st);
  }
  st.superstep += 1;
  progress_.fetch_add(1, std::memory_order_relaxed);
  // Same consistent cut as the rigid boundary (see do_sync): a fault inside
  // the window unwound before reaching here, so a checkpoint is only ever
  // taken on a fully reconciled boundary.
  if (cfg_.checkpoint_every != 0 &&
      st.superstep % cfg_.checkpoint_every == 0) {
    recovery_.checkpoint(st);
  }
  begin_work_slice(st);
}

void Runtime::finalize_worker(detail::WorkerState& st) {
  if (st.overlap_active) {
    throw std::logic_error(
        "gbsp: worker " + std::to_string(st.pid) +
        " returned from the SPMD function inside a split-phase window "
        "(missing sync_end())");
  }
  if (st.sent_messages != 0 || transport_->has_unflushed(st)) {
    throw std::logic_error(
        "gbsp: worker " + std::to_string(st.pid) +
        " sent messages after its final sync(); they can never be delivered");
  }
  // The tail slice after the last sync() is the program's final superstep.
  record_step(st);
}

void Runtime::report_error(std::exception_ptr e, int pid) {
  // Class 0: program (user) errors — the root cause when a functor throws.
  // Class 1: transport errors — often *secondary* (a peer unwinding because
  // worker 0 threw looks, to worker 1, like a dead peer). A user error must
  // therefore outrank any transport error regardless of pid; within a class
  // the lowest pid wins, so concurrent failures diagnose deterministically.
  int cls = 0;
  try {
    std::rethrow_exception(e);
  } catch (const BspTransportError&) {
    cls = 1;
  } catch (...) {
  }
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (first_error_ == nullptr || cls < first_error_class_ ||
        (cls == first_error_class_ && pid < first_error_pid_)) {
      first_error_ = e;
      first_error_pid_ = pid;
      first_error_class_ = cls;
    }
  }
  abort_.store(true, std::memory_order_release);
  if (scheduler_) scheduler_->abort();
}

void Runtime::watchdog_main() {
  using clock = std::chrono::steady_clock;
  const auto deadline = std::chrono::milliseconds(cfg_.superstep_deadline_ms);
  // Poll often enough to detect a wedge promptly without burning a core.
  const auto tick = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(1),
      std::min(deadline / 4, std::chrono::milliseconds(100)));
  std::uint64_t last = progress_.load(std::memory_order_relaxed);
  clock::time_point last_change = clock::now();
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(tick);
    const std::uint64_t cur = progress_.load(std::memory_order_relaxed);
    if (cur != last) {
      last = cur;
      last_change = clock::now();
      continue;
    }
    if (abort_.load(std::memory_order_acquire)) continue;  // already unwinding
    if (clock::now() - last_change < deadline) continue;
    // Report as a transport error (it is recoverable by retry) from a pid
    // past every real worker, so any concrete per-worker diagnosis wins the
    // tie-break over this generic one.
    report_error(
        std::make_exception_ptr(BspTransportError(
            "watchdog: no worker completed a superstep boundary within "
            "superstep_deadline_ms=" +
                std::to_string(cfg_.superstep_deadline_ms) + "ms",
            /*rank=*/-1, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
            /*err=*/0, /*bytes_moved=*/0)),
        cfg_.nprocs);
    last_change = clock::now();  // rate-limit repeat reports while unwinding
  }
}

void Runtime::worker_main(int local, const std::function<void(Worker&)>& fn) {
  // `local` indexes states_; st.pid is the global rank (they differ only in
  // process mode, where the one local state carries Config::tcp_rank).
  detail::WorkerState& st = *states_[static_cast<std::size_t>(local)];
  Worker w(this, &st);
  detail::current_worker_slot() = &w;
  bool started = true;
  try {
    if (scheduler_) scheduler_->start(st.pid);
  } catch (const BspAborted&) {
    started = false;
  }
  if (started) {
    try {
      begin_work_slice(st);
      fn(w);
      finalize_worker(st);
    } catch (const BspAborted&) {
      // Unwound because a peer failed; nothing to report.
    } catch (...) {
      report_error(std::current_exception(), st.pid);
    }
  }
  st.finished = true;
  if (scheduler_) scheduler_->finish(st.pid);
  detail::current_worker_slot() = nullptr;
}

bool Runtime::run_attempt(const std::function<void(Worker&)>& fn) {
  const int p = cfg_.nprocs;
  // In process mode this process hosts exactly one of the p ranks; its state
  // still carries per-destination counters sized to the full global run.
  const int nl = process_mode() ? 1 : p;
  abort_.store(false, std::memory_order_release);
  first_error_ = nullptr;
  first_error_pid_ = -1;
  first_error_class_ = 2;

  states_.clear();
  states_.reserve(static_cast<std::size_t>(nl));
  for (int i = 0; i < nl; ++i) {
    auto st = std::make_unique<detail::WorkerState>();
    st->pid = process_mode() ? process_rank() : i;
    st->seq_to.assign(static_cast<std::size_t>(p), 0);
    if (cfg_.collect_comm_matrix) {
      st->sent_to.assign(static_cast<std::size_t>(p), 0);
    }
    // On a resume, rebuild the state to the checkpointed cut — superstep
    // counter, sequence numbers, trace, and inbox views — before the
    // transport or any worker thread sees it.
    if (resume_step_ >= 0) {
      recovery_.restore(*st, static_cast<std::uint64_t>(resume_step_));
    }
    states_.push_back(std::move(st));
  }
  // The transport rebuilds its per-run arenas (and, for sockets, endpoints)
  // here; destroying the previous run's arenas releases every slab into
  // pool_ for the new ones to reacquire — buffers recycle across run()
  // calls, not just across supersteps. A failed attempt marked the socket
  // wire dirty, so a retry gets a fresh mesh.
  transport_->reset_run(states_);
  barrier_a_ = make_barrier(cfg_.barrier, nl, &abort_);
  barrier_b_ = make_barrier(cfg_.barrier, nl, &abort_);
  scheduler_.reset();
  if (cfg_.scheduling == Scheduling::Serialized) {
    scheduler_ = std::make_unique<SerialScheduler>(
        p, [this] { transport_->exchange(states_); });
  }

  progress_.fetch_add(1, std::memory_order_relaxed);  // attempt start
  watchdog_stop_.store(false, std::memory_order_release);
  std::thread watchdog;
  if (cfg_.superstep_deadline_ms != 0) {
    watchdog = std::thread([this] { watchdog_main(); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nl));
  for (int i = 0; i < nl; ++i) {
    threads.emplace_back([this, i, &fn] { worker_main(i, fn); });
  }
  for (auto& t : threads) t.join();

  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();

  return first_error_ == nullptr;
}

RunStats Runtime::run(const std::function<void(Worker&)>& fn) {
  const int p = cfg_.nprocs;
  recovery_.reset(p);
  resume_step_ = -1;
  recoveries_ = 0;
  // A fresh independent run re-arms the fault plan's counters; they then
  // persist across the retry attempts *within* this run, which is what makes
  // nth-occurrence lethal faults transient (they already fired).
  if (fault_) fault_->reset();

  WallTimer wall;
  std::size_t attempt = 0;
  while (!run_attempt(fn)) {
    // Only transport errors are recoverable by replay; a program error would
    // just recur (and masks nothing — report_error classified it primary).
    if (first_error_class_ != 1 || attempt >= cfg_.max_run_retries) {
      std::rethrow_exception(first_error_);
    }
    recoveries_ += 1;
    const std::size_t shift = std::min<std::size_t>(attempt, 20);
    std::this_thread::sleep_for(
        std::chrono::microseconds(cfg_.retry_backoff_us << shift));
    attempt += 1;
    // Resume from the newest checkpoint present on every rank; without
    // checkpointing (or before the first one completes), replay the whole
    // run — exact for deterministic programs.
    resume_step_ = cfg_.checkpoint_every != 0 ? recovery_.latest_complete()
                                              : -1;
  }

  RunStats stats;
  stats.nprocs = p;
  stats.wall_s = wall.elapsed_s();
  stats.recoveries = recoveries_;
  stats.traces.reserve(states_.size());
  for (auto& st : states_) stats.traces.push_back(std::move(st->trace));
  stats.aggregate_from_traces();
  return stats;
}

void Runtime::set_fault_plan(const FaultPlan& plan) {
  fault_ = std::make_unique<FaultInjector>(plan);
  transport_->set_fault_injector(fault_.get());
}

void Runtime::clear_fault_plan() {
  transport_->set_fault_injector(nullptr);
  fault_.reset();
}

RunStats run_bsp(int nprocs, const std::function<void(Worker&)>& fn) {
  Config cfg;
  cfg.nprocs = nprocs;
  return Runtime(cfg).run(fn);
}

}  // namespace gbsp
