// Direct remote memory access in the style of the Oxford BSP library.
//
// The paper contrasts two BSP library designs (Section 1.3): "The Oxford
// BSP library ... allows a processor to directly access the memory of
// another processor ... well suited for many static computations", versus
// the Green BSP library's message passing, "better suited for ... dynamic
// applications". This module provides the Oxford-style interface —
// registered segments, put, and get with superstep semantics — implemented
// entirely ON TOP of the Green BSP primitives (send/sync/get_message),
// demonstrating the paper's thesis that richer operations layer cleanly
// over the minimal core.
//
// Semantics (BSPlib-compatible):
//  * Registration is collective: every processor calls register_segment in
//    the same order; the returned slot identifies the peer segments.
//  * put(dest, ...) copies local bytes into the destination's segment; the
//    write lands at the end of the current DRMA superstep.
//  * get(from, ...) reads the source's segment as it was when the source
//    entered drma.sync() — before any incoming puts of the same superstep
//    are applied ("all gets are performed before any puts take effect").
//  * drma.sync() is the DRMA superstep boundary; it spends two BSP
//    supersteps (request delivery + get replies).
//
// One Drma object per Worker, used only by that worker's thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/runtime.hpp"

namespace gbsp {

class Drma {
 public:
  explicit Drma(Worker& w) : w_(w) {}

  /// Collective: registers `bytes` of local memory at `base` and returns
  /// the segment slot (identical on every processor when called in the same
  /// order, as required). Usable after the next drma sync().
  int register_segment(void* base, std::size_t bytes);

  /// Deregisters the most recently registered segment (stack discipline,
  /// like BSPlib's pop_reg). Collective; effective immediately.
  void pop_segment();

  /// Queues a copy of local [src, src+bytes) into processor `dest`'s
  /// segment `seg` at `offset`. Delivered at the end of this superstep.
  void put(int dest, const void* src, int seg, std::size_t offset,
           std::size_t bytes);

  /// Queues a read of processor `from`'s segment `seg` at `offset` into
  /// local `dst`. Satisfied during sync() with the pre-put remote contents.
  void get(int from, int seg, std::size_t offset, void* dst,
           std::size_t bytes);

  /// DRMA superstep boundary: delivers puts, serves gets. Costs two BSP
  /// supersteps. The worker's plain message inbox must be drained first
  /// (DRMA supersteps are dedicated, like collectives).
  void sync();

  /// One-superstep boundary for put-only traffic (the common case in
  /// static computations — exactly the workloads the paper says the Oxford
  /// library suits). Collective: no processor may have issued a get in this
  /// superstep; a pending local get (or an arriving get request) throws.
  void sync_puts_only();

  [[nodiscard]] Worker& worker() { return w_; }
  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }

 private:
  struct Segment {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
  };
  struct PendingGet {
    int from = 0;
    std::int32_t seg = 0;
    std::uint64_t offset = 0;
    std::byte* dst = nullptr;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] Segment& checked_segment(int seg, std::size_t offset,
                                         std::size_t bytes,
                                         const char* what);

  Worker& w_;
  std::vector<Segment> segments_;
  std::vector<PendingGet> pending_gets_;
};

}  // namespace gbsp
