#include "core/mesh.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <thread>

#include "core/transport.hpp"  // BspTransportError

namespace gbsp {
namespace detail {

namespace {

/// Largest kernel buffer the adaptive sizing will ever request. Beyond a few
/// MiB the transfer is syscall-bound anyway and the pumps stream through the
/// buffer; unbounded requests would just pin memory per endpoint.
constexpr std::size_t kMaxKernelBufBytes = std::size_t{1} << 22;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw BspTransportError("fcntl(O_NONBLOCK) failed", /*rank=*/-1,
                            /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                            errno, /*bytes_moved=*/0);
  }
}

std::size_t kernel_buf_bytes(int fd, int opt) {
  int v = 0;
  socklen_t len = sizeof(v);
  if (::getsockopt(fd, SOL_SOCKET, opt, &v, &len) != 0 || v < 0) return 0;
  return static_cast<std::size_t>(v);
}

void request_kernel_buf(int fd, int opt, std::size_t bytes) {
  const int v = static_cast<int>(std::min(
      bytes, static_cast<std::size_t>(std::numeric_limits<int>::max())));
  // Best effort: the kernel clamps to its rmem/wmem limits, and the
  // partial-I/O pumps are correct at any buffer size.
  (void)::setsockopt(fd, SOL_SOCKET, opt, &v, sizeof(v));
}

using Clock = std::chrono::steady_clock;

/// Milliseconds until `deadline`, floored at 1 so a nearly expired budget
/// still makes one bounded attempt instead of an instant zero-timeout fail.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(1, left.count()));
}

void set_io_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Exact-length blocking read. Returns true on success; false with *err == 0
/// on EOF, false with *err == errno on error (EAGAIN after SO_RCVTIMEO means
/// the handshake timed out).
bool read_full(int fd, void* buf, std::size_t n, int* err) {
  std::byte* p = static_cast<std::byte*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      *err = 0;
      return false;
    }
    if (errno == EINTR) continue;
    *err = errno;
    return false;
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n, int* err) {
  const std::byte* p = static_cast<const std::byte*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (r >= 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    *err = errno;
    return false;
  }
  return true;
}

std::string endpoint_str(const std::string& host, int port) {
  return host + ":" + std::to_string(port);
}

}  // namespace

// ---------------------------------------------------------------------- Mesh

void Mesh::build(int nprocs) {
  teardown();
  nprocs_ = nprocs;
  const std::size_t n2 =
      static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs);
  snd_grown_to_.assign(n2, 0);
  rcv_grown_to_.assign(n2, 0);
  try {
    do_build(nprocs);
  } catch (...) {
    // A partial bootstrap (some endpoints up, some not) must not leak into a
    // later build: tear down and stay dirty. The mesh remains reusable — the
    // next build() starts from scratch.
    teardown();
    throw;
  }
  ++builds_;
  dirty_.store(false, std::memory_order_relaxed);
}

void Mesh::grow_kernel_buffer(int pid, int peer, bool send_side,
                              std::size_t stage_bytes) {
  if (cfg_.socket_buffer_bytes != 0) return;  // pinned at build time
  const std::size_t want = std::min(stage_bytes, kMaxKernelBufBytes);
  std::size_t& mark = send_side ? snd_grown_to_[mark_index(pid, peer)]
                                : rcv_grown_to_[mark_index(pid, peer)];
  if (want <= mark) return;
  mark = want;
  request_kernel_buf(fd(pid, peer), send_side ? SO_SNDBUF : SO_RCVBUF, want);
}

void Mesh::seed_buffer_marks(int pid, int peer) {
  const int f = fd(pid, peer);
  snd_grown_to_[mark_index(pid, peer)] = kernel_buf_bytes(f, SO_SNDBUF);
  rcv_grown_to_[mark_index(pid, peer)] = kernel_buf_bytes(f, SO_RCVBUF);
}

void Mesh::apply_endpoint_options(int fd) const {
  set_nonblocking(fd);
  if (cfg_.socket_buffer_bytes != 0) {
    // Pinned mode: one explicit request per endpoint, no adaptive growth.
    request_kernel_buf(fd, SO_SNDBUF, cfg_.socket_buffer_bytes);
    request_kernel_buf(fd, SO_RCVBUF, cfg_.socket_buffer_bytes);
  }
}

// ------------------------------------------------------------ SocketpairMesh

void SocketpairMesh::teardown() {
  for (int& fd : fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

int SocketpairMesh::fd(int pid, int peer) const {
  return fd_[static_cast<std::size_t>(pid) *
                 static_cast<std::size_t>(nprocs_) +
             static_cast<std::size_t>(peer)];
}

void SocketpairMesh::do_build(int nprocs) {
  const std::size_t p = static_cast<std::size_t>(nprocs);
  fd_.assign(p * p, -1);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw BspTransportError("socketpair failed", /*rank=*/-1,
                                static_cast<int>(j), /*superstep=*/-1,
                                /*stage=*/-1, errno, /*bytes_moved=*/0);
      }
      apply_endpoint_options(sv[0]);
      apply_endpoint_options(sv[1]);
      fd_[i * p + j] = sv[0];
      fd_[j * p + i] = sv[1];
      seed_buffer_marks(static_cast<int>(i), static_cast<int>(j));
      seed_buffer_marks(static_cast<int>(j), static_cast<int>(i));
    }
  }
}

void SocketpairMesh::kill_endpoints(int pid) {
  // The injected death leaves peers' streams in an undefined half-written
  // state by design: force a mesh rebuild on the next run.
  mark_dirty();
  const std::size_t p = static_cast<std::size_t>(nprocs_);
  for (std::size_t j = 0; j < p; ++j) {
    const int fd = fd_[static_cast<std::size_t>(pid) * p + j];
    // shutdown, not close: peers polling the other end must observe EOF,
    // and the fd number must stay reserved until the rebuild.
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

// ----------------------------------------------------------------- TcpMesh

void TcpMesh::teardown() {
  for (int& fd : fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int TcpMesh::fd(int pid, int peer) const {
  if (pid != cfg_.tcp_rank) return -1;  // only the local rank has endpoints
  return fd_[static_cast<std::size_t>(peer)];
}

void TcpMesh::kill_endpoints(int pid) {
  mark_dirty();
  if (pid != cfg_.tcp_rank) return;
  for (int fd : fd_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void TcpMesh::send_hello(int fd, int peer) const {
  RankHello h;
  h.rank = static_cast<std::uint32_t>(cfg_.tcp_rank);
  h.nprocs = static_cast<std::uint32_t>(nprocs_);
  int err = 0;
  if (!write_full(fd, &h, sizeof(h), &err)) {
    throw BspTransportError("failed to send the rank handshake",
                            cfg_.tcp_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
}

RankHello TcpMesh::recv_hello(int fd, int peer) const {
  RankHello h;
  int err = 0;
  if (!read_full(fd, &h, sizeof(h), &err)) {
    if (err == 0) {
      throw BspTransportError(
          "peer closed the connection during the rank handshake (peer died "
          "during accept?)",
          cfg_.tcp_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw BspTransportError(
          "rank handshake timed out after tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms",
          cfg_.tcp_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    throw BspTransportError("failed to read the rank handshake",
                            cfg_.tcp_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
  return h;
}

void TcpMesh::check_hello(const RankHello& h, int fd, int expect_rank) const {
  (void)fd;
  const int me = cfg_.tcp_rank;
  if (h.magic != RankHello::kMagic) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(h.magic));
    throw BspTransportError(
        std::string("rank handshake has bad magic ") + hex +
            " — the peer is not a gbsp mesh rank (or a byte-order mismatch)",
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.version != RankHello::kVersion) {
    throw BspTransportError(
        "rank handshake version mismatch: peer speaks mesh protocol v" +
            std::to_string(h.version) + ", this build expects v" +
            std::to_string(RankHello::kVersion),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.reserved != 0) {
    throw BspTransportError(
        "rank handshake has nonzero reserved field (stream corruption?)", me,
        expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.nprocs != static_cast<std::uint32_t>(nprocs_)) {
    throw BspTransportError(
        "rank handshake nprocs mismatch: peer was launched with " +
            std::to_string(h.nprocs) + " ranks, this rank with " +
            std::to_string(nprocs_),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (expect_rank >= 0) {
    if (h.rank != static_cast<std::uint32_t>(expect_rank)) {
      throw BspTransportError(
          "rank handshake rank mismatch: expected rank " +
              std::to_string(expect_rank) + " on this port, peer claims rank " +
              std::to_string(h.rank) + " (port map skewed?)",
          me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    return;
  }
  // Accept side: any higher rank we have not accepted yet.
  if (h.rank >= static_cast<std::uint32_t>(nprocs_) ||
      static_cast<int>(h.rank) <= me) {
    throw BspTransportError(
        "rank handshake rank mismatch: accepted a connection claiming rank " +
            std::to_string(h.rank) + ", but rank " + std::to_string(me) +
            " of " + std::to_string(nprocs_) +
            " only accepts from higher ranks",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
  if (fd_[h.rank] >= 0) {
    throw BspTransportError(
        "duplicate rank handshake: rank " + std::to_string(h.rank) +
            " connected twice (two processes launched with the same "
            "GBSP_RANK?)",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
}

void TcpMesh::do_build(int nprocs) {
  const int me = cfg_.tcp_rank;
  fd_.assign(static_cast<std::size_t>(nprocs), -1);

  in_addr host_addr{};
  if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &host_addr) != 1) {
    throw BspTransportError(
        "tcp_host \"" + cfg_.tcp_host + "\" is not a numeric IPv4 address",
        me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.tcp_connect_timeout_ms);

  // 1. Listener first, before any connect: across processes the bootstrap is
  // deadlock-free because every rank's listener exists (or will shortly —
  // connectors retry) before anyone blocks in accept.
  const int my_port = cfg_.tcp_port + me;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw BspTransportError("socket(AF_INET) failed", me, /*peer=*/-1,
                            /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  const int one = 1;
  // SO_REUSEADDR: a rebuild (wire-dirty retry) must re-bind the same port
  // while the previous incarnation's accepted sockets sit in TIME_WAIT.
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = host_addr;
  sa.sin_port = htons(static_cast<std::uint16_t>(my_port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw BspTransportError(
        "bind(" + endpoint_str(cfg_.tcp_host, my_port) + ") for rank " +
            std::to_string(me) + " failed (port already in use?)",
        me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, errno,
        /*bytes_moved=*/0);
  }
  if (::listen(listen_fd_, nprocs) != 0) {
    throw BspTransportError(
        "listen(" + endpoint_str(cfg_.tcp_host, my_port) + ") failed", me,
        /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, errno,
        /*bytes_moved=*/0);
  }

  // 2. Connect to every lower rank's listener (the pair orientation: higher
  // rank dials, lower rank answers). ECONNREFUSED just means that rank's
  // listener is not up yet — retry until the deadline.
  for (int j = 0; j < me; ++j) {
    const int peer_port = cfg_.tcp_port + j;
    int fd = -1;
    for (;;) {
      if (Clock::now() >= deadline) {
        throw BspTransportError(
            "connect to rank " + std::to_string(j) + " at " +
                endpoint_str(cfg_.tcp_host, peer_port) +
                " timed out after tcp_connect_timeout_ms=" +
                std::to_string(cfg_.tcp_connect_timeout_ms) +
                "ms (rank never launched, or died during bootstrap?)",
            me, j, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
            /*bytes_moved=*/0);
      }
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        throw BspTransportError("socket(AF_INET) failed", me, j,
                                /*superstep=*/-1, /*stage=*/-1, errno,
                                /*bytes_moved=*/0);
      }
      sockaddr_in pa{};
      pa.sin_family = AF_INET;
      pa.sin_addr = host_addr;
      pa.sin_port = htons(static_cast<std::uint16_t>(peer_port));
      set_io_timeout(fd, remaining_ms(deadline));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&pa), sizeof(pa)) == 0) {
        // Handshake: the dialing side speaks first. A peer that resets or
        // closes underneath the handshake is treated like a refused connect
        // (it may be tearing down a previous incarnation) and retried until
        // the deadline; a malformed or mismatched hello is fatal.
        try {
          send_hello(fd, j);
          const RankHello h = recv_hello(fd, j);
          check_hello(h, fd, /*expect_rank=*/j);
          break;
        } catch (const BspTransportError& e) {
          ::close(fd);
          fd = -1;
          if (e.err == ECONNRESET || e.err == EPIPE ||
              (e.err == 0 && std::string(e.what()).find("peer closed") !=
                                 std::string::npos)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          throw;
        }
      }
      const int cerr = errno;
      ::close(fd);
      fd = -1;
      if (cerr == ECONNREFUSED || cerr == ETIMEDOUT || cerr == EINTR ||
          cerr == EAGAIN || cerr == EINPROGRESS) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      throw BspTransportError(
          "connect to rank " + std::to_string(j) + " at " +
              endpoint_str(cfg_.tcp_host, peer_port) + " failed",
          me, j, /*superstep=*/-1, /*stage=*/-1, cerr, /*bytes_moved=*/0);
    }
    fd_[static_cast<std::size_t>(j)] = fd;
  }

  // 3. Accept every higher rank. The hello tells us who dialed in; a
  // connection that fails its handshake fails the whole bootstrap — the
  // caller tears down and (on retry) rebuilds from scratch.
  int expected = nprocs - 1 - me;
  while (expected > 0) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw BspTransportError("poll on the mesh listener failed", me,
                              /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                              errno, /*bytes_moved=*/0);
    }
    if (pr == 0) {
      throw BspTransportError(
          "accept on " + endpoint_str(cfg_.tcp_host, my_port) +
              " timed out with " + std::to_string(expected) +
              " rank(s) still unconnected (tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms)",
          me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw BspTransportError("accept failed", me, /*peer=*/-1,
                              /*superstep=*/-1, /*stage=*/-1, errno,
                              /*bytes_moved=*/0);
    }
    set_io_timeout(fd, remaining_ms(deadline));
    RankHello h;
    try {
      h = recv_hello(fd, /*peer=*/-1);
      check_hello(h, fd, /*expect_rank=*/-1);
      send_hello(fd, static_cast<int>(h.rank));
    } catch (...) {
      ::close(fd);
      throw;
    }
    fd_[h.rank] = fd;
    --expected;
  }
  // Bootstrap complete: close the listener so nothing can dial in mid-run
  // (a skewed retry attempt gets ECONNREFUSED and keeps retrying until this
  // rank reaches its own rebuild).
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 4. Stage-traffic socket options, now that the blocking handshake is done.
  for (int j = 0; j < nprocs; ++j) {
    const int fd = fd_[static_cast<std::size_t>(j)];
    if (fd < 0) continue;
    set_io_timeout(fd, 0);  // back to no-timeout; stage I/O is non-blocking
    // The staged exchange writes small control sections (24 B preamble)
    // followed by bulk payload; Nagle would hold the control bytes hostage
    // to the previous stage's ACKs.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    apply_endpoint_options(fd);
    seed_buffer_marks(me, j);
  }
}

// ----------------------------------------------------------------- ShmMesh

namespace {

constexpr std::size_t kShmPage = 4096;

std::size_t page_up(std::size_t n) {
  return (n + kShmPage - 1) & ~(kShmPage - 1);
}

/// One direction block: a control page, the ring, and the zero-copy slab,
/// each page-aligned so the producer and consumer never share a page across
/// role boundaries.
std::size_t shm_dir_bytes(const Config& cfg) {
  return kShmPage + page_up(cfg.shm_ring_bytes) + page_up(cfg.shm_slab_bytes);
}

/// Whole pair segment: header page + both direction blocks.
std::size_t shm_segment_bytes(const Config& cfg) {
  return kShmPage + 2 * shm_dir_bytes(cfg);
}

/// Abstract-namespace AF_UNIX address of `rank`'s bootstrap listener:
/// "\0gbsp-shm.<shm_name>.<rank>". Abstract sockets vanish with their owning
/// process, so a crashed run leaves nothing on the filesystem to unlink.
socklen_t shm_abstract_addr(const Config& cfg, int rank, sockaddr_un* sa) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sun_family = AF_UNIX;
  const std::string tag =
      "gbsp-shm." + cfg.shm_name + "." + std::to_string(rank);
  // sun_path[0] stays NUL (abstract namespace); shm_name is capped at 64
  // bytes by Config::validate, so the tag always fits sun_path.
  std::memcpy(sa->sun_path + 1, tag.data(), tag.size());
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                tag.size());
}

/// Passes the pair segment's memfd plus its announced byte length over the
/// bootstrap stream. The SCM_RIGHTS cmsg rides the first byte of the length
/// word; any stream-split tail follows as ordinary bytes.
void send_fd_with_len(int sock, int seg_fd, std::uint64_t seg_len, int me,
                      int peer) {
  msghdr msg{};
  iovec iov{&seg_len, sizeof(seg_len)};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  std::memset(cbuf, 0, sizeof(cbuf));
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_SOCKET;
  cm->cmsg_type = SCM_RIGHTS;
  cm->cmsg_len = CMSG_LEN(sizeof(int));
  std::memcpy(CMSG_DATA(cm), &seg_fd, sizeof(int));
  for (;;) {
    const ssize_t r = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (r >= 0) {
      if (static_cast<std::size_t>(r) < sizeof(seg_len)) {
        int err = 0;
        if (!write_full(sock,
                        reinterpret_cast<const std::byte*>(&seg_len) + r,
                        sizeof(seg_len) - static_cast<std::size_t>(r), &err)) {
          throw BspTransportError("failed to pass the shm segment fd", me,
                                  peer, /*superstep=*/-1, /*stage=*/-1, err,
                                  /*bytes_moved=*/0);
        }
      }
      return;
    }
    if (errno == EINTR) continue;
    throw BspTransportError("failed to pass the shm segment fd", me, peer,
                            /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
}

/// Receives the segment fd + announced length from the pair's lower rank.
/// EOF here is its own failure mode (distinct from a handshake-phase close,
/// which the dialer retries): the peer completed the hello but died before
/// — or while — handing the segment over.
int recv_fd_with_len(int sock, std::uint64_t* seg_len, int me, int peer,
                     int timeout_ms) {
  msghdr msg{};
  iovec iov{seg_len, sizeof(*seg_len)};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int))];
  msg.msg_control = cbuf;
  msg.msg_controllen = sizeof(cbuf);
  ssize_t r;
  for (;;) {
    r = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    if (r >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw BspTransportError(
          "shm segment handoff timed out after tcp_connect_timeout_ms=" +
              std::to_string(timeout_ms) + "ms",
          me, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    throw BspTransportError("failed to receive the shm segment fd", me, peer,
                            /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  int fd = -1;
  for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
       cm = CMSG_NXTHDR(&msg, cm)) {
    if (cm->cmsg_level == SOL_SOCKET && cm->cmsg_type == SCM_RIGHTS) {
      std::memcpy(&fd, CMSG_DATA(cm), sizeof(int));
    }
  }
  if (r == 0) {
    if (fd >= 0) ::close(fd);
    throw BspTransportError(
        "peer closed during segment handoff (rank " + std::to_string(peer) +
            " died after the handshake?)",
        me, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (fd < 0) {
    throw BspTransportError(
        "shm segment handoff carried no fd (peer sent data without "
        "SCM_RIGHTS — not a gbsp shm rank?)",
        me, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (static_cast<std::size_t>(r) < sizeof(*seg_len)) {
    int err = 0;
    if (!read_full(sock, reinterpret_cast<std::byte*>(seg_len) + r,
                   sizeof(*seg_len) - static_cast<std::size_t>(r), &err)) {
      ::close(fd);
      throw BspTransportError(
          "peer closed during segment handoff (rank " + std::to_string(peer) +
              " died mid-handoff?)",
          me, peer, /*superstep=*/-1, /*stage=*/-1, err, /*bytes_moved=*/0);
    }
  }
  return fd;
}

}  // namespace

void ShmMesh::teardown() {
  for (int& fd : ctrl_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (Mapping& m : maps_) {
    if (m.base != nullptr) ::munmap(m.base, m.len);
    m = Mapping{};
  }
  pairs_.assign(pairs_.size(), ShmPairView{});
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int ShmMesh::fd(int pid, int peer) const {
  if (pid != cfg_.shm_rank) return -1;  // only the local rank has endpoints
  return ctrl_[static_cast<std::size_t>(peer)];
}

void ShmMesh::kill_endpoints(int pid) {
  mark_dirty();
  if (pid != cfg_.shm_rank) return;
  // shutdown, not close: the peer's engine observes EOF on its death-check
  // peek of the control stream, exactly as a real process death reads.
  for (int fd : ctrl_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

ShmPairView* ShmMesh::shm_pair(int pid, int peer) {
  if (pid != cfg_.shm_rank || peer == pid) return nullptr;
  if (peer < 0 || peer >= nprocs_) return nullptr;
  if (maps_[static_cast<std::size_t>(peer)].base == nullptr) return nullptr;
  return &pairs_[static_cast<std::size_t>(peer)];
}

void ShmMesh::send_hello(int fd, int peer) const {
  RankHello h;
  h.rank = static_cast<std::uint32_t>(cfg_.shm_rank);
  h.nprocs = static_cast<std::uint32_t>(nprocs_);
  int err = 0;
  if (!write_full(fd, &h, sizeof(h), &err)) {
    throw BspTransportError("failed to send the rank handshake",
                            cfg_.shm_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
}

RankHello ShmMesh::recv_hello(int fd, int peer) const {
  RankHello h;
  int err = 0;
  if (!read_full(fd, &h, sizeof(h), &err)) {
    if (err == 0) {
      throw BspTransportError(
          "peer closed the connection during the rank handshake (peer died "
          "during accept?)",
          cfg_.shm_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw BspTransportError(
          "rank handshake timed out after tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms",
          cfg_.shm_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    throw BspTransportError("failed to read the rank handshake",
                            cfg_.shm_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
  return h;
}

void ShmMesh::check_hello(const RankHello& h, int expect_rank) const {
  const int me = cfg_.shm_rank;
  if (h.magic != RankHello::kMagic) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(h.magic));
    throw BspTransportError(
        std::string("rank handshake has bad magic ") + hex +
            " — the peer is not a gbsp mesh rank (or a byte-order mismatch)",
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.version != RankHello::kVersion) {
    throw BspTransportError(
        "rank handshake version mismatch: peer speaks mesh protocol v" +
            std::to_string(h.version) + ", this build expects v" +
            std::to_string(RankHello::kVersion),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.reserved != 0) {
    throw BspTransportError(
        "rank handshake has nonzero reserved field (stream corruption?)", me,
        expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.nprocs != static_cast<std::uint32_t>(nprocs_)) {
    throw BspTransportError(
        "rank handshake nprocs mismatch: peer was launched with " +
            std::to_string(h.nprocs) + " ranks, this rank with " +
            std::to_string(nprocs_),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (expect_rank >= 0) {
    if (h.rank != static_cast<std::uint32_t>(expect_rank)) {
      throw BspTransportError(
          "rank handshake rank mismatch: expected rank " +
              std::to_string(expect_rank) +
              " on this socket, peer claims rank " + std::to_string(h.rank) +
              " (shm_name collision between runs?)",
          me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    return;
  }
  // Accept side: any higher rank we have not accepted yet.
  if (h.rank >= static_cast<std::uint32_t>(nprocs_) ||
      static_cast<int>(h.rank) <= me) {
    throw BspTransportError(
        "rank handshake rank mismatch: accepted a connection claiming rank " +
            std::to_string(h.rank) + ", but rank " + std::to_string(me) +
            " of " + std::to_string(nprocs_) +
            " only accepts from higher ranks",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
  if (ctrl_[h.rank] >= 0) {
    throw BspTransportError(
        "duplicate rank handshake: rank " + std::to_string(h.rank) +
            " connected twice (two processes launched with the same "
            "GBSP_RANK?)",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
}

int ShmMesh::create_segment(int peer) {
  const int me = cfg_.shm_rank;
  const std::size_t len = shm_segment_bytes(cfg_);
  const std::string tag = "gbsp-shm." + cfg_.shm_name + "." +
                          std::to_string(std::min(me, peer)) + "-" +
                          std::to_string(std::max(me, peer));
  const int seg_fd = ::memfd_create(tag.c_str(), MFD_CLOEXEC);
  if (seg_fd < 0) {
    throw BspTransportError("memfd_create for the shm pair segment failed",
                            me, peer, /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  if (::ftruncate(seg_fd, static_cast<off_t>(len)) != 0) {
    const int err = errno;
    ::close(seg_fd);
    throw BspTransportError(
        "ftruncate of the shm pair segment to " + std::to_string(len) +
            " bytes failed",
        me, peer, /*superstep=*/-1, /*stage=*/-1, err, /*bytes_moved=*/0);
  }
  void* base =
      ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, seg_fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(seg_fd);
    throw BspTransportError("mmap of the shm pair segment failed", me, peer,
                            /*superstep=*/-1, /*stage=*/-1, err,
                            /*bytes_moved=*/0);
  }
  // memfd pages are born zero — already the rings' initial cursor state —
  // but the header and control blocks still get explicit construction.
  auto* hdr = new (base) ShmSegmentHdr;
  hdr->nprocs = static_cast<std::uint32_t>(nprocs_);
  hdr->rank_lo = static_cast<std::uint32_t>(std::min(me, peer));
  hdr->rank_hi = static_cast<std::uint32_t>(std::max(me, peer));
  hdr->ring_bytes = cfg_.shm_ring_bytes;
  hdr->slab_bytes = cfg_.shm_slab_bytes;
  const std::size_t dir = shm_dir_bytes(cfg_);
  new (static_cast<std::byte*>(base) + kShmPage) ShmRingCtl{};
  new (static_cast<std::byte*>(base) + kShmPage + dir) ShmRingCtl{};
  maps_[static_cast<std::size_t>(peer)] = Mapping{base, len};
  wire_views(base, peer);
  return seg_fd;
}

void ShmMesh::adopt_segment(int seg_fd, int peer) {
  const int me = cfg_.shm_rank;
  struct stat st {};
  if (::fstat(seg_fd, &st) != 0) {
    throw BspTransportError("fstat of the received shm segment fd failed", me,
                            peer, /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  const std::size_t want = shm_segment_bytes(cfg_);
  if (static_cast<std::size_t>(st.st_size) != want) {
    throw BspTransportError(
        "shm segment size mismatch: rank " + std::to_string(peer) + " sent " +
            std::to_string(st.st_size) +
            " bytes, this rank's shm_ring_bytes/shm_slab_bytes expect " +
            std::to_string(want) + " (ranks launched with different configs?)",
        me, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  void* base =
      ::mmap(nullptr, want, PROT_READ | PROT_WRITE, MAP_SHARED, seg_fd, 0);
  if (base == MAP_FAILED) {
    throw BspTransportError("mmap of the received shm segment failed", me,
                            peer, /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  const auto* hdr = static_cast<const ShmSegmentHdr*>(base);
  std::string why;
  if (hdr->magic != ShmSegmentHdr::kMagic) {
    why = "bad segment magic (not a gbsp shm segment?)";
  } else if (hdr->version != ShmSegmentHdr::kVersion) {
    why = "segment protocol v" + std::to_string(hdr->version) +
          ", this build expects v" + std::to_string(ShmSegmentHdr::kVersion);
  } else if (hdr->nprocs != static_cast<std::uint32_t>(nprocs_)) {
    why = "segment built for " + std::to_string(hdr->nprocs) +
          " ranks, this rank expects " + std::to_string(nprocs_);
  } else if (hdr->rank_lo != static_cast<std::uint32_t>(std::min(me, peer)) ||
             hdr->rank_hi != static_cast<std::uint32_t>(std::max(me, peer))) {
    why = "segment belongs to pair (" + std::to_string(hdr->rank_lo) + ", " +
          std::to_string(hdr->rank_hi) + "), expected (" +
          std::to_string(std::min(me, peer)) + ", " +
          std::to_string(std::max(me, peer)) + ")";
  } else if (hdr->ring_bytes != cfg_.shm_ring_bytes) {
    why = "ring-size mismatch: segment rings are " +
          std::to_string(hdr->ring_bytes) +
          " bytes, this rank's shm_ring_bytes=" +
          std::to_string(cfg_.shm_ring_bytes);
  } else if (hdr->slab_bytes != cfg_.shm_slab_bytes) {
    why = "slab-size mismatch: segment slabs are " +
          std::to_string(hdr->slab_bytes) +
          " bytes, this rank's shm_slab_bytes=" +
          std::to_string(cfg_.shm_slab_bytes);
  }
  if (!why.empty()) {
    ::munmap(base, want);
    throw BspTransportError("shm segment validation failed: " + why, me, peer,
                            /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
                            /*bytes_moved=*/0);
  }
  maps_[static_cast<std::size_t>(peer)] = Mapping{base, want};
  wire_views(base, peer);
}

void ShmMesh::wire_views(void* base, int peer) {
  const int me = cfg_.shm_rank;
  const std::size_t dir = shm_dir_bytes(cfg_);
  std::byte* b = static_cast<std::byte*>(base);
  const auto view = [&](std::size_t off) {
    ShmDirView d;
    d.ctl = reinterpret_cast<ShmRingCtl*>(b + off);
    d.ring = b + off + kShmPage;
    d.ring_cap = cfg_.shm_ring_bytes;
    d.slab = b + off + kShmPage + page_up(cfg_.shm_ring_bytes);
    d.slab_cap = cfg_.shm_slab_bytes;
    return d;
  };
  const ShmDirView d0 = view(kShmPage);        // lo -> hi direction
  const ShmDirView d1 = view(kShmPage + dir);  // hi -> lo direction
  ShmPairView& pv = pairs_[static_cast<std::size_t>(peer)];
  if (me < peer) {
    pv.send = d0;
    pv.recv = d1;
  } else {
    pv.send = d1;
    pv.recv = d0;
  }
}

void ShmMesh::do_build(int nprocs) {
  const int me = cfg_.shm_rank;
  const std::size_t p = static_cast<std::size_t>(nprocs);
  ctrl_.assign(p, -1);
  pairs_.assign(p, ShmPairView{});
  maps_.assign(p, Mapping{});

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.tcp_connect_timeout_ms);

  // 1. Listener first — the same deadlock-free shape as the TCP bootstrap:
  // every rank's listener exists (or shortly will; dialers retry) before
  // anyone blocks in accept.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw BspTransportError("socket(AF_UNIX) failed", me, /*peer=*/-1,
                            /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  sockaddr_un sa;
  const socklen_t salen = shm_abstract_addr(cfg_, me, &sa);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), salen) != 0) {
    throw BspTransportError(
        "bind of abstract socket \"gbsp-shm." + cfg_.shm_name + "." +
            std::to_string(me) + "\" failed (another rank " +
            std::to_string(me) + " already running under this shm_name?)",
        me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, errno,
        /*bytes_moved=*/0);
  }
  if (::listen(listen_fd_, nprocs) != 0) {
    throw BspTransportError("listen on the shm bootstrap socket failed", me,
                            /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                            errno, /*bytes_moved=*/0);
  }

  // 2. Dial every lower rank's listener; after the hello exchange the lower
  // rank hands over the pair segment's memfd, which this side maps and
  // validates. ECONNREFUSED just means that rank's listener is not up yet.
  for (int j = 0; j < me; ++j) {
    int fd = -1;
    for (;;) {
      if (Clock::now() >= deadline) {
        throw BspTransportError(
            "connect to rank " + std::to_string(j) +
                "'s shm bootstrap socket timed out after "
                "tcp_connect_timeout_ms=" +
                std::to_string(cfg_.tcp_connect_timeout_ms) +
                "ms (rank never launched, or died during bootstrap?)",
            me, j, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
            /*bytes_moved=*/0);
      }
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        throw BspTransportError("socket(AF_UNIX) failed", me, j,
                                /*superstep=*/-1, /*stage=*/-1, errno,
                                /*bytes_moved=*/0);
      }
      sockaddr_un pa;
      const socklen_t palen = shm_abstract_addr(cfg_, j, &pa);
      set_io_timeout(fd, remaining_ms(deadline));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&pa), palen) == 0) {
        // A peer that closes underneath the HANDSHAKE may be tearing down a
        // previous incarnation — retry like a refused connect. A close
        // during the segment HANDOFF (after a validated hello) is fatal:
        // that peer committed to this build and died.
        try {
          send_hello(fd, j);
          const RankHello h = recv_hello(fd, j);
          check_hello(h, /*expect_rank=*/j);
          std::uint64_t seg_len = 0;
          const int seg_fd = recv_fd_with_len(fd, &seg_len, me, j,
                                              cfg_.tcp_connect_timeout_ms);
          try {
            if (seg_len != shm_segment_bytes(cfg_)) {
              throw BspTransportError(
                  "shm segment size mismatch: rank " + std::to_string(j) +
                      " announced " + std::to_string(seg_len) +
                      " bytes, this rank's shm_ring_bytes/shm_slab_bytes "
                      "expect " +
                      std::to_string(shm_segment_bytes(cfg_)) +
                      " (ranks launched with different configs?)",
                  me, j, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
                  /*bytes_moved=*/0);
            }
            adopt_segment(seg_fd, j);
          } catch (...) {
            ::close(seg_fd);
            throw;
          }
          ::close(seg_fd);  // the mapping outlives the fd
          break;
        } catch (const BspTransportError& e) {
          ::close(fd);
          fd = -1;
          if (e.err == ECONNRESET || e.err == EPIPE ||
              (e.err == 0 &&
               std::string(e.what()).find(
                   "peer closed the connection during the rank handshake") !=
                   std::string::npos)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          throw;
        }
      }
      const int cerr = errno;
      ::close(fd);
      fd = -1;
      if (cerr == ECONNREFUSED || cerr == ENOENT || cerr == ETIMEDOUT ||
          cerr == EINTR || cerr == EAGAIN) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      throw BspTransportError(
          "connect to rank " + std::to_string(j) +
              "'s shm bootstrap socket failed",
          me, j, /*superstep=*/-1, /*stage=*/-1, cerr, /*bytes_moved=*/0);
    }
    ctrl_[static_cast<std::size_t>(j)] = fd;
  }

  // 3. Accept every higher rank; this side creates each pair's segment and
  // passes the fd. A failed handshake or handoff fails the whole bootstrap.
  int expected = nprocs - 1 - me;
  while (expected > 0) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw BspTransportError("poll on the shm bootstrap listener failed", me,
                              /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                              errno, /*bytes_moved=*/0);
    }
    if (pr == 0) {
      throw BspTransportError(
          "accept on abstract socket \"gbsp-shm." + cfg_.shm_name + "." +
              std::to_string(me) + "\" timed out with " +
              std::to_string(expected) +
              " rank(s) still unconnected (tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms)",
          me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw BspTransportError("accept on the shm bootstrap socket failed", me,
                              /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                              errno, /*bytes_moved=*/0);
    }
    set_io_timeout(fd, remaining_ms(deadline));
    int seg_fd = -1;
    try {
      const RankHello h = recv_hello(fd, /*peer=*/-1);
      check_hello(h, /*expect_rank=*/-1);
      send_hello(fd, static_cast<int>(h.rank));
      seg_fd = create_segment(static_cast<int>(h.rank));
      send_fd_with_len(fd, seg_fd, shm_segment_bytes(cfg_), me,
                       static_cast<int>(h.rank));
      ::close(seg_fd);
      seg_fd = -1;
      ctrl_[h.rank] = fd;
    } catch (...) {
      if (seg_fd >= 0) ::close(seg_fd);
      ::close(fd);
      throw;
    }
    --expected;
  }
  // Bootstrap complete: close the listener so nothing can dial in mid-run.
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 4. The control streams carry no stage traffic; drop the handshake
  // timeout so the engine's death-detection peek never sees a spurious
  // timeout errno.
  for (std::size_t j = 0; j < p; ++j) {
    if (ctrl_[j] >= 0) set_io_timeout(ctrl_[j], 0);
  }
}

}  // namespace detail
}  // namespace gbsp
