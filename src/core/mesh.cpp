#include "core/mesh.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>

#include "core/transport.hpp"  // BspTransportError

namespace gbsp {
namespace detail {

namespace {

/// Largest kernel buffer the adaptive sizing will ever request. Beyond a few
/// MiB the transfer is syscall-bound anyway and the pumps stream through the
/// buffer; unbounded requests would just pin memory per endpoint.
constexpr std::size_t kMaxKernelBufBytes = std::size_t{1} << 22;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw BspTransportError("fcntl(O_NONBLOCK) failed", /*rank=*/-1,
                            /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                            errno, /*bytes_moved=*/0);
  }
}

std::size_t kernel_buf_bytes(int fd, int opt) {
  int v = 0;
  socklen_t len = sizeof(v);
  if (::getsockopt(fd, SOL_SOCKET, opt, &v, &len) != 0 || v < 0) return 0;
  return static_cast<std::size_t>(v);
}

void request_kernel_buf(int fd, int opt, std::size_t bytes) {
  const int v = static_cast<int>(std::min(
      bytes, static_cast<std::size_t>(std::numeric_limits<int>::max())));
  // Best effort: the kernel clamps to its rmem/wmem limits, and the
  // partial-I/O pumps are correct at any buffer size.
  (void)::setsockopt(fd, SOL_SOCKET, opt, &v, sizeof(v));
}

using Clock = std::chrono::steady_clock;

/// Milliseconds until `deadline`, floored at 1 so a nearly expired budget
/// still makes one bounded attempt instead of an instant zero-timeout fail.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::max<std::int64_t>(1, left.count()));
}

void set_io_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Exact-length blocking read. Returns true on success; false with *err == 0
/// on EOF, false with *err == errno on error (EAGAIN after SO_RCVTIMEO means
/// the handshake timed out).
bool read_full(int fd, void* buf, std::size_t n, int* err) {
  std::byte* p = static_cast<std::byte*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, p + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      *err = 0;
      return false;
    }
    if (errno == EINTR) continue;
    *err = errno;
    return false;
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n, int* err) {
  const std::byte* p = static_cast<const std::byte*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (r >= 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    *err = errno;
    return false;
  }
  return true;
}

std::string endpoint_str(const std::string& host, int port) {
  return host + ":" + std::to_string(port);
}

}  // namespace

// ---------------------------------------------------------------------- Mesh

void Mesh::build(int nprocs) {
  teardown();
  nprocs_ = nprocs;
  const std::size_t n2 =
      static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs);
  snd_grown_to_.assign(n2, 0);
  rcv_grown_to_.assign(n2, 0);
  try {
    do_build(nprocs);
  } catch (...) {
    // A partial bootstrap (some endpoints up, some not) must not leak into a
    // later build: tear down and stay dirty. The mesh remains reusable — the
    // next build() starts from scratch.
    teardown();
    throw;
  }
  ++builds_;
  dirty_.store(false, std::memory_order_relaxed);
}

void Mesh::grow_kernel_buffer(int pid, int peer, bool send_side,
                              std::size_t stage_bytes) {
  if (cfg_.socket_buffer_bytes != 0) return;  // pinned at build time
  const std::size_t want = std::min(stage_bytes, kMaxKernelBufBytes);
  std::size_t& mark = send_side ? snd_grown_to_[mark_index(pid, peer)]
                                : rcv_grown_to_[mark_index(pid, peer)];
  if (want <= mark) return;
  mark = want;
  request_kernel_buf(fd(pid, peer), send_side ? SO_SNDBUF : SO_RCVBUF, want);
}

void Mesh::seed_buffer_marks(int pid, int peer) {
  const int f = fd(pid, peer);
  snd_grown_to_[mark_index(pid, peer)] = kernel_buf_bytes(f, SO_SNDBUF);
  rcv_grown_to_[mark_index(pid, peer)] = kernel_buf_bytes(f, SO_RCVBUF);
}

void Mesh::apply_endpoint_options(int fd) const {
  set_nonblocking(fd);
  if (cfg_.socket_buffer_bytes != 0) {
    // Pinned mode: one explicit request per endpoint, no adaptive growth.
    request_kernel_buf(fd, SO_SNDBUF, cfg_.socket_buffer_bytes);
    request_kernel_buf(fd, SO_RCVBUF, cfg_.socket_buffer_bytes);
  }
}

// ------------------------------------------------------------ SocketpairMesh

void SocketpairMesh::teardown() {
  for (int& fd : fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

int SocketpairMesh::fd(int pid, int peer) const {
  return fd_[static_cast<std::size_t>(pid) *
                 static_cast<std::size_t>(nprocs_) +
             static_cast<std::size_t>(peer)];
}

void SocketpairMesh::do_build(int nprocs) {
  const std::size_t p = static_cast<std::size_t>(nprocs);
  fd_.assign(p * p, -1);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw BspTransportError("socketpair failed", /*rank=*/-1,
                                static_cast<int>(j), /*superstep=*/-1,
                                /*stage=*/-1, errno, /*bytes_moved=*/0);
      }
      apply_endpoint_options(sv[0]);
      apply_endpoint_options(sv[1]);
      fd_[i * p + j] = sv[0];
      fd_[j * p + i] = sv[1];
      seed_buffer_marks(static_cast<int>(i), static_cast<int>(j));
      seed_buffer_marks(static_cast<int>(j), static_cast<int>(i));
    }
  }
}

void SocketpairMesh::kill_endpoints(int pid) {
  // The injected death leaves peers' streams in an undefined half-written
  // state by design: force a mesh rebuild on the next run.
  mark_dirty();
  const std::size_t p = static_cast<std::size_t>(nprocs_);
  for (std::size_t j = 0; j < p; ++j) {
    const int fd = fd_[static_cast<std::size_t>(pid) * p + j];
    // shutdown, not close: peers polling the other end must observe EOF,
    // and the fd number must stay reserved until the rebuild.
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

// ----------------------------------------------------------------- TcpMesh

void TcpMesh::teardown() {
  for (int& fd : fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int TcpMesh::fd(int pid, int peer) const {
  if (pid != cfg_.tcp_rank) return -1;  // only the local rank has endpoints
  return fd_[static_cast<std::size_t>(peer)];
}

void TcpMesh::kill_endpoints(int pid) {
  mark_dirty();
  if (pid != cfg_.tcp_rank) return;
  for (int fd : fd_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void TcpMesh::send_hello(int fd, int peer) const {
  RankHello h;
  h.rank = static_cast<std::uint32_t>(cfg_.tcp_rank);
  h.nprocs = static_cast<std::uint32_t>(nprocs_);
  int err = 0;
  if (!write_full(fd, &h, sizeof(h), &err)) {
    throw BspTransportError("failed to send the rank handshake",
                            cfg_.tcp_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
}

RankHello TcpMesh::recv_hello(int fd, int peer) const {
  RankHello h;
  int err = 0;
  if (!read_full(fd, &h, sizeof(h), &err)) {
    if (err == 0) {
      throw BspTransportError(
          "peer closed the connection during the rank handshake (peer died "
          "during accept?)",
          cfg_.tcp_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    if (err == EAGAIN || err == EWOULDBLOCK) {
      throw BspTransportError(
          "rank handshake timed out after tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms",
          cfg_.tcp_rank, peer, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    throw BspTransportError("failed to read the rank handshake",
                            cfg_.tcp_rank, peer, /*superstep=*/-1,
                            /*stage=*/-1, err, /*bytes_moved=*/0);
  }
  return h;
}

void TcpMesh::check_hello(const RankHello& h, int fd, int expect_rank) const {
  (void)fd;
  const int me = cfg_.tcp_rank;
  if (h.magic != RankHello::kMagic) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(h.magic));
    throw BspTransportError(
        std::string("rank handshake has bad magic ") + hex +
            " — the peer is not a gbsp mesh rank (or a byte-order mismatch)",
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.version != RankHello::kVersion) {
    throw BspTransportError(
        "rank handshake version mismatch: peer speaks mesh protocol v" +
            std::to_string(h.version) + ", this build expects v" +
            std::to_string(RankHello::kVersion),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.reserved != 0) {
    throw BspTransportError(
        "rank handshake has nonzero reserved field (stream corruption?)", me,
        expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (h.nprocs != static_cast<std::uint32_t>(nprocs_)) {
    throw BspTransportError(
        "rank handshake nprocs mismatch: peer was launched with " +
            std::to_string(h.nprocs) + " ranks, this rank with " +
            std::to_string(nprocs_),
        me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  if (expect_rank >= 0) {
    if (h.rank != static_cast<std::uint32_t>(expect_rank)) {
      throw BspTransportError(
          "rank handshake rank mismatch: expected rank " +
              std::to_string(expect_rank) + " on this port, peer claims rank " +
              std::to_string(h.rank) + " (port map skewed?)",
          me, expect_rank, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    return;
  }
  // Accept side: any higher rank we have not accepted yet.
  if (h.rank >= static_cast<std::uint32_t>(nprocs_) ||
      static_cast<int>(h.rank) <= me) {
    throw BspTransportError(
        "rank handshake rank mismatch: accepted a connection claiming rank " +
            std::to_string(h.rank) + ", but rank " + std::to_string(me) +
            " of " + std::to_string(nprocs_) +
            " only accepts from higher ranks",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
  if (fd_[h.rank] >= 0) {
    throw BspTransportError(
        "duplicate rank handshake: rank " + std::to_string(h.rank) +
            " connected twice (two processes launched with the same "
            "GBSP_RANK?)",
        me, static_cast<int>(h.rank), /*superstep=*/-1, /*stage=*/-1,
        /*err=*/0, /*bytes_moved=*/0);
  }
}

void TcpMesh::do_build(int nprocs) {
  const int me = cfg_.tcp_rank;
  fd_.assign(static_cast<std::size_t>(nprocs), -1);

  in_addr host_addr{};
  if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &host_addr) != 1) {
    throw BspTransportError(
        "tcp_host \"" + cfg_.tcp_host + "\" is not a numeric IPv4 address",
        me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
        /*bytes_moved=*/0);
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.tcp_connect_timeout_ms);

  // 1. Listener first, before any connect: across processes the bootstrap is
  // deadlock-free because every rank's listener exists (or will shortly —
  // connectors retry) before anyone blocks in accept.
  const int my_port = cfg_.tcp_port + me;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw BspTransportError("socket(AF_INET) failed", me, /*peer=*/-1,
                            /*superstep=*/-1, /*stage=*/-1, errno,
                            /*bytes_moved=*/0);
  }
  const int one = 1;
  // SO_REUSEADDR: a rebuild (wire-dirty retry) must re-bind the same port
  // while the previous incarnation's accepted sockets sit in TIME_WAIT.
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = host_addr;
  sa.sin_port = htons(static_cast<std::uint16_t>(my_port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw BspTransportError(
        "bind(" + endpoint_str(cfg_.tcp_host, my_port) + ") for rank " +
            std::to_string(me) + " failed (port already in use?)",
        me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, errno,
        /*bytes_moved=*/0);
  }
  if (::listen(listen_fd_, nprocs) != 0) {
    throw BspTransportError(
        "listen(" + endpoint_str(cfg_.tcp_host, my_port) + ") failed", me,
        /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, errno,
        /*bytes_moved=*/0);
  }

  // 2. Connect to every lower rank's listener (the pair orientation: higher
  // rank dials, lower rank answers). ECONNREFUSED just means that rank's
  // listener is not up yet — retry until the deadline.
  for (int j = 0; j < me; ++j) {
    const int peer_port = cfg_.tcp_port + j;
    int fd = -1;
    for (;;) {
      if (Clock::now() >= deadline) {
        throw BspTransportError(
            "connect to rank " + std::to_string(j) + " at " +
                endpoint_str(cfg_.tcp_host, peer_port) +
                " timed out after tcp_connect_timeout_ms=" +
                std::to_string(cfg_.tcp_connect_timeout_ms) +
                "ms (rank never launched, or died during bootstrap?)",
            me, j, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
            /*bytes_moved=*/0);
      }
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        throw BspTransportError("socket(AF_INET) failed", me, j,
                                /*superstep=*/-1, /*stage=*/-1, errno,
                                /*bytes_moved=*/0);
      }
      sockaddr_in pa{};
      pa.sin_family = AF_INET;
      pa.sin_addr = host_addr;
      pa.sin_port = htons(static_cast<std::uint16_t>(peer_port));
      set_io_timeout(fd, remaining_ms(deadline));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&pa), sizeof(pa)) == 0) {
        // Handshake: the dialing side speaks first. A peer that resets or
        // closes underneath the handshake is treated like a refused connect
        // (it may be tearing down a previous incarnation) and retried until
        // the deadline; a malformed or mismatched hello is fatal.
        try {
          send_hello(fd, j);
          const RankHello h = recv_hello(fd, j);
          check_hello(h, fd, /*expect_rank=*/j);
          break;
        } catch (const BspTransportError& e) {
          ::close(fd);
          fd = -1;
          if (e.err == ECONNRESET || e.err == EPIPE ||
              (e.err == 0 && std::string(e.what()).find("peer closed") !=
                                 std::string::npos)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            continue;
          }
          throw;
        }
      }
      const int cerr = errno;
      ::close(fd);
      fd = -1;
      if (cerr == ECONNREFUSED || cerr == ETIMEDOUT || cerr == EINTR ||
          cerr == EAGAIN || cerr == EINPROGRESS) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }
      throw BspTransportError(
          "connect to rank " + std::to_string(j) + " at " +
              endpoint_str(cfg_.tcp_host, peer_port) + " failed",
          me, j, /*superstep=*/-1, /*stage=*/-1, cerr, /*bytes_moved=*/0);
    }
    fd_[static_cast<std::size_t>(j)] = fd;
  }

  // 3. Accept every higher rank. The hello tells us who dialed in; a
  // connection that fails its handshake fails the whole bootstrap — the
  // caller tears down and (on retry) rebuilds from scratch.
  int expected = nprocs - 1 - me;
  while (expected > 0) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, remaining_ms(deadline));
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw BspTransportError("poll on the mesh listener failed", me,
                              /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1,
                              errno, /*bytes_moved=*/0);
    }
    if (pr == 0) {
      throw BspTransportError(
          "accept on " + endpoint_str(cfg_.tcp_host, my_port) +
              " timed out with " + std::to_string(expected) +
              " rank(s) still unconnected (tcp_connect_timeout_ms=" +
              std::to_string(cfg_.tcp_connect_timeout_ms) + "ms)",
          me, /*peer=*/-1, /*superstep=*/-1, /*stage=*/-1, /*err=*/0,
          /*bytes_moved=*/0);
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw BspTransportError("accept failed", me, /*peer=*/-1,
                              /*superstep=*/-1, /*stage=*/-1, errno,
                              /*bytes_moved=*/0);
    }
    set_io_timeout(fd, remaining_ms(deadline));
    RankHello h;
    try {
      h = recv_hello(fd, /*peer=*/-1);
      check_hello(h, fd, /*expect_rank=*/-1);
      send_hello(fd, static_cast<int>(h.rank));
    } catch (...) {
      ::close(fd);
      throw;
    }
    fd_[h.rank] = fd;
    --expected;
  }
  // Bootstrap complete: close the listener so nothing can dial in mid-run
  // (a skewed retry attempt gets ECONNREFUSED and keeps retrying until this
  // rank reaches its own rebuild).
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 4. Stage-traffic socket options, now that the blocking handshake is done.
  for (int j = 0; j < nprocs; ++j) {
    const int fd = fd_[static_cast<std::size_t>(j)];
    if (fd < 0) continue;
    set_io_timeout(fd, 0);  // back to no-timeout; stage I/O is non-blocking
    // The staged exchange writes small control sections (24 B preamble)
    // followed by bulk payload; Nagle would hold the control bytes hostage
    // to the previous stage's ACKs.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    apply_endpoint_options(fd);
    seed_buffer_marks(me, j);
  }
}

}  // namespace detail
}  // namespace gbsp
