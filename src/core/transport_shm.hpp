// Shared-memory transport: the cross-process exchange with the kernel taken
// off the data path — the third composition of the mesh/engine split:
//
//   * ShmMesh (core/mesh.hpp): this process is exactly one rank
//     (Config::shm_rank) of an nprocs-process run on ONE host. Each ordered
//     rank pair shares an mmap'd memfd segment holding two SPSC byte rings
//     and a zero-copy payload slab (core/shm_ring.hpp), fd-passed over an
//     abstract AF_UNIX bootstrap handshake (normally under tools/bsp_launch
//     --transport shm). The bootstrap streams stay open as per-peer control
//     channels: their only post-bootstrap traffic is EOF, the peer-death
//     signal.
//   * ExchangeEngine (core/exchange_engine.hpp), attached to the local rank:
//     the identical v2 sectioned wire format and rigid (p-1)-stage schedule,
//     with both pumps swapped onto ring memcpys. Steady state makes zero
//     syscalls (wire_syscalls reads 0); payloads >= shm_inline_threshold
//     travel zero-copy through the slab, and publish() re-points their inbox
//     views at the shared mapping itself (ExchangeEngine::apply_zc_views).
//
// Everything else matches TcpTransport: one local worker (pid == shm_rank),
// the exchange is the synchronisation, peer death throws BspTransportError
// and marks the mesh dirty so the next run re-enters the bootstrap,
// checkpoint resume degrades to whole-run replay, and Serialized scheduling
// is rejected by validate_config.
#pragma once

#include <cstdint>
#include <memory>

#include "core/exchange_engine.hpp"
#include "core/mesh.hpp"
#include "core/transport.hpp"

namespace gbsp {

class ShmTransport final : public detail::TransportBase {
 public:
  ShmTransport(const Config& cfg, SlabPool& pool,
               const std::atomic<bool>* abort_flag)
      : TransportBase(cfg, pool, abort_flag), mesh_(cfg) {}

  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] bool needs_boundary_barriers() const override { return false; }
  [[nodiscard]] bool steady_state_zero_alloc() const override { return false; }

  void reset_run(const std::vector<std::unique_ptr<detail::WorkerState>>&
                     states) override;
  void stage_send(detail::WorkerState& st, int dest, const void* data,
                  std::size_t n) override;
  std::byte* stage_reserve(detail::WorkerState& st, int dest,
                           std::size_t n) override;
  void flush(detail::WorkerState& st) override {
    inject_boundary_fault(FaultSite::Flush, st);
  }
  void deliver_to(detail::WorkerState& dst) override;
  void begin_exchange(detail::WorkerState& st) override;
  bool progress(detail::WorkerState& st) override;
  void finish_exchange(detail::WorkerState& st) override;
  void exchange(const std::vector<std::unique_ptr<detail::WorkerState>>&
                    states) override;
  [[nodiscard]] bool has_unflushed(
      const detail::WorkerState& st) const override;

  /// How many times the shm mesh has been bootstrapped (same reuse contract
  /// as TcpTransport::debug_mesh_builds: clean runs keep it flat).
  [[nodiscard]] std::uint64_t debug_mesh_builds() const {
    return mesh_.builds();
  }

 private:
  void publish(detail::WorkerState& dst);

  detail::ShmMesh mesh_;
  // The one engine of the one local rank (unique_ptr: an engine must never
  // relocate — its StageState can point into its own scratch).
  std::unique_ptr<detail::ExchangeEngine> eng_;
};

}  // namespace gbsp
