#include "util/kernels.hpp"

#include <algorithm>

#include "util/simd.hpp"

namespace gbsp::kernels {

namespace {

using simd::vd;

constexpr int kW = simd::kWidth;
constexpr int kMR = 4;        // register-tile rows
constexpr int kNR = 2 * kW;   // register-tile columns (two vectors)
constexpr int kKC = 256;      // k-dimension cache block (packed panels)

/// Packs the kc x n panel starting at B (row stride ldb) into column strips
/// of width kNR, k-major within each strip: for strip j0,
/// Bp[(j0/kNR)*kc*kNR + k*kNR + jj] = B[k][j0+jj], zero-padded past n.
void pack_b(const double* B, int ldb, int kc, int n, double* Bp) {
  for (int j0 = 0; j0 < n; j0 += kNR) {
    const int jw = std::min(kNR, n - j0);
    for (int k = 0; k < kc; ++k) {
      const double* brow = B + static_cast<std::size_t>(k) * ldb + j0;
      double* dst = Bp + static_cast<std::size_t>(k) * kNR;
      for (int jj = 0; jj < jw; ++jj) dst[jj] = brow[jj];
      for (int jj = jw; jj < kNR; ++jj) dst[jj] = 0.0;
    }
    Bp += static_cast<std::size_t>(kc) * kNR;
  }
}

/// Packs the m_eff x kc strip starting at A (row stride lda) k-major:
/// Ap[k*kMR + ii] = A[ii][k], rows past m_eff zero-padded.
void pack_a(const double* A, int lda, int m_eff, int kc, double* Ap) {
  for (int k = 0; k < kc; ++k) {
    double* dst = Ap + static_cast<std::size_t>(k) * kMR;
    for (int ii = 0; ii < m_eff; ++ii) {
      dst[ii] = A[static_cast<std::size_t>(ii) * lda + k];
    }
    for (int ii = m_eff; ii < kMR; ++ii) dst[ii] = 0.0;
  }
}

/// The register-tile micro-kernel: C(m_eff x n_eff) += Ap * Bp over kc
/// rank-1 updates, with the full kMR x kNR accumulator tile held in
/// registers (8 vectors + 2 B loads + 1 A broadcast = the whole SSE2
/// register file at width 2; proportionally roomier on AVX/AVX-512).
void micro_kernel(int kc, const double* Ap, const double* Bp, double* C,
                  int ldc, int m_eff, int n_eff) {
  vd c00 = simd::zero(), c01 = simd::zero();
  vd c10 = simd::zero(), c11 = simd::zero();
  vd c20 = simd::zero(), c21 = simd::zero();
  vd c30 = simd::zero(), c31 = simd::zero();
  for (int k = 0; k < kc; ++k) {
    const vd b0 = simd::load(Bp);
    const vd b1 = simd::load(Bp + kW);
    vd a = simd::broadcast(Ap[0]);
    c00 = simd::mul_add(a, b0, c00);
    c01 = simd::mul_add(a, b1, c01);
    a = simd::broadcast(Ap[1]);
    c10 = simd::mul_add(a, b0, c10);
    c11 = simd::mul_add(a, b1, c11);
    a = simd::broadcast(Ap[2]);
    c20 = simd::mul_add(a, b0, c20);
    c21 = simd::mul_add(a, b1, c21);
    a = simd::broadcast(Ap[3]);
    c30 = simd::mul_add(a, b0, c30);
    c31 = simd::mul_add(a, b1, c31);
    Ap += kMR;
    Bp += kNR;
  }
  if (m_eff == kMR && n_eff == kNR) {
    double* r0 = C;
    double* r1 = C + ldc;
    double* r2 = C + 2 * static_cast<std::size_t>(ldc);
    double* r3 = C + 3 * static_cast<std::size_t>(ldc);
    simd::store(r0, simd::load(r0) + c00);
    simd::store(r0 + kW, simd::load(r0 + kW) + c01);
    simd::store(r1, simd::load(r1) + c10);
    simd::store(r1 + kW, simd::load(r1 + kW) + c11);
    simd::store(r2, simd::load(r2) + c20);
    simd::store(r2 + kW, simd::load(r2 + kW) + c21);
    simd::store(r3, simd::load(r3) + c30);
    simd::store(r3 + kW, simd::load(r3 + kW) + c31);
    return;
  }
  // Edge tile: spill the accumulators and add the live part element-wise.
  double buf[kMR * kNR];
  simd::store(buf + 0 * kNR, c00);
  simd::store(buf + 0 * kNR + kW, c01);
  simd::store(buf + 1 * kNR, c10);
  simd::store(buf + 1 * kNR + kW, c11);
  simd::store(buf + 2 * kNR, c20);
  simd::store(buf + 2 * kNR + kW, c21);
  simd::store(buf + 3 * kNR, c30);
  simd::store(buf + 3 * kNR + kW, c31);
  for (int ii = 0; ii < m_eff; ++ii) {
    double* crow = C + static_cast<std::size_t>(ii) * ldc;
    for (int jj = 0; jj < n_eff; ++jj) crow[jj] += buf[ii * kNR + jj];
  }
}

}  // namespace

void dgemm_add(const double* A, int lda, const double* B, int ldb, double* C,
               int ldc, int M, int N, int K) {
  if (M <= 0 || N <= 0 || K <= 0) return;
  // Recycled per-thread packing scratch: sized for the largest panels seen,
  // reused across calls (and across supersteps — Cannon calls this once per
  // superstep), released at thread exit.
  thread_local std::vector<double> a_scratch;
  thread_local std::vector<double> b_scratch;
  const int n_strips = (N + kNR - 1) / kNR;
  b_scratch.resize(static_cast<std::size_t>(n_strips) * kNR *
                   std::min(K, kKC));
  a_scratch.resize(static_cast<std::size_t>(kMR) * std::min(K, kKC));

  for (int kk = 0; kk < K; kk += kKC) {
    const int kc = std::min(kKC, K - kk);
    pack_b(B + static_cast<std::size_t>(kk) * ldb, ldb, kc, N,
           b_scratch.data());
    for (int i0 = 0; i0 < M; i0 += kMR) {
      const int m_eff = std::min(kMR, M - i0);
      pack_a(A + static_cast<std::size_t>(i0) * lda + kk, lda, m_eff, kc,
             a_scratch.data());
      const double* bp = b_scratch.data();
      for (int j0 = 0; j0 < N; j0 += kNR) {
        micro_kernel(kc, a_scratch.data(), bp,
                     C + static_cast<std::size_t>(i0) * ldc + j0, ldc, m_eff,
                     std::min(kNR, N - j0));
        bp += static_cast<std::size_t>(kc) * kNR;
      }
    }
  }
}

void accumulate_accel(const double* sx, const double* sy, const double* sz,
                      const double* sm, std::size_t ns, double tx, double ty,
                      double tz, double eps2, double* ax, double* ay,
                      double* az) {
  const vd vtx = simd::broadcast(tx);
  const vd vty = simd::broadcast(ty);
  const vd vtz = simd::broadcast(tz);
  const vd veps2 = simd::broadcast(eps2);
  const vd vzero = simd::zero();
  vd acx = simd::zero(), acy = simd::zero(), acz = simd::zero();
  std::size_t s = 0;
  for (; s + kW <= ns; s += kW) {
    const vd dx = simd::load(sx + s) - vtx;
    const vd dy = simd::load(sy + s) - vty;
    const vd dz = simd::load(sz + s) - vtz;
    const vd r2 = dx * dx + dy * dy + dz * dz;
    const vd denom = r2 + veps2;
    // inv is +inf (or NaN for massless sources) on denom == 0 lanes; the
    // mask zeroes exactly those, preserving the scalar loops' self-skip.
    vd inv = simd::load(sm + s) / (denom * simd::sqrt(denom));
    inv = simd::mask(inv, denom > vzero);
    acx = simd::mul_add(dx, inv, acx);
    acy = simd::mul_add(dy, inv, acy);
    acz = simd::mul_add(dz, inv, acz);
  }
  double x = simd::hsum(acx), y = simd::hsum(acy), z = simd::hsum(acz);
  for (; s < ns; ++s) {
    const double dx = sx[s] - tx, dy = sy[s] - ty, dz = sz[s] - tz;
    const double denom = dx * dx + dy * dy + dz * dz + eps2;
    if (denom == 0.0) continue;
    const double inv = sm[s] / (denom * std::sqrt(denom));
    x += dx * inv;
    y += dy * inv;
    z += dz * inv;
  }
  *ax += x;
  *ay += y;
  *az += z;
}

}  // namespace gbsp::kernels
