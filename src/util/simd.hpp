// Portable fixed-width SIMD vector abstraction for the compute-kernel layer
// (DESIGN.md section 7).
//
// The paper's cost model T = W + g*H + L*S only exposes its predicted
// behavior when the local-computation term W runs at hardware speed
// (Gerbessiotis & Siniolakis; Buurlage et al.).  This header gives the
// kernels in util/kernels.{hpp,cpp} and apps/ocean/kernels.hpp one vector
// type to write against:
//
//   * On GCC/Clang: the compilers' generic vector extensions.  The width is
//     chosen at compile time from the target ISA (AVX-512 -> 8 doubles,
//     AVX -> 4, otherwise 2 = one SSE2 register) and can be overridden with
//     -DGBSP_SIMD_WIDTH=N.  The vector typedef carries alignment 8, so
//     loads/stores through any double* are legal (the compiler emits
//     unaligned moves); no kernel requires over-aligned buffers.
//   * Elsewhere (-DGBSP_SIMD_SCALAR=1 forces it): a plain struct-of-lanes
//     fallback with identical semantics, so every kernel compiles and gives
//     bit-identical answers on any C++20 compiler.
//
// FP contract (see DESIGN.md section 7 for the full policy):
//   * `mul_add(a, b, c)` is written `a * b + c` — the compiler may contract
//     it to a single-rounding FMA when the target has one.  Kernels that are
//     allowed to reassociate (dgemm, interaction batches) use this.
//   * `fmadd(a, b, c)` is an explicit lane-wise std::fma — always one
//     rounding, on every target, at whatever speed the target gives it.
//   * Bit-exact kernels (the ocean rows) use neither helper: they mirror the
//     retained scalar reference expression shape operation for operation, so
//     scalar and vector forms contract identically under any one set of
//     compiler flags.
#pragma once

#include <cmath>
#include <cstddef>

#if !defined(GBSP_SIMD_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define GBSP_SIMD_VECTOR_EXT 1
#else
#define GBSP_SIMD_VECTOR_EXT 0
#endif

#ifndef GBSP_SIMD_WIDTH
#if !GBSP_SIMD_VECTOR_EXT
#define GBSP_SIMD_WIDTH 4
#elif defined(__AVX512F__)
#define GBSP_SIMD_WIDTH 8
#elif defined(__AVX__)
#define GBSP_SIMD_WIDTH 4
#else
// One hardware register on plain SSE2 x86-64.  Wider emulated vectors cost
// register pressure in the dgemm micro-kernel, which is tuned so its
// accumulator tile fits the 16-register baseline file exactly.
#define GBSP_SIMD_WIDTH 2
#endif
#endif

namespace gbsp::simd {

inline constexpr int kWidth = GBSP_SIMD_WIDTH;

#if GBSP_SIMD_VECTOR_EXT

typedef double vd
    __attribute__((vector_size(sizeof(double) * GBSP_SIMD_WIDTH),
                   aligned(8)));
typedef long long vmask
    __attribute__((vector_size(sizeof(long long) * GBSP_SIMD_WIDTH),
                   aligned(8)));

inline vd load(const double* p) { return *reinterpret_cast<const vd*>(p); }
inline void store(double* p, vd v) { *reinterpret_cast<vd*>(p) = v; }

inline vd broadcast(double x) { return x - vd{}; }
inline vd zero() { return vd{}; }

#else  // scalar fallback

struct vd {
  double lane[kWidth];
  friend vd operator+(vd a, vd b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] += b.lane[i];
    return a;
  }
  friend vd operator-(vd a, vd b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] -= b.lane[i];
    return a;
  }
  friend vd operator*(vd a, vd b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] *= b.lane[i];
    return a;
  }
  friend vd operator/(vd a, vd b) {
    for (int i = 0; i < kWidth; ++i) a.lane[i] /= b.lane[i];
    return a;
  }
  double operator[](int i) const { return lane[i]; }
  double& operator[](int i) { return lane[i]; }
};

struct vmask {
  long long lane[kWidth];
};

inline vd load(const double* p) {
  vd v;
  for (int i = 0; i < kWidth; ++i) v.lane[i] = p[i];
  return v;
}
inline void store(double* p, vd v) {
  for (int i = 0; i < kWidth; ++i) p[i] = v.lane[i];
}
inline vd broadcast(double x) {
  vd v;
  for (int i = 0; i < kWidth; ++i) v.lane[i] = x;
  return v;
}
inline vd zero() { return broadcast(0.0); }

#endif  // GBSP_SIMD_VECTOR_EXT

/// a*b + c, contraction allowed: the compiler may emit a single-rounding
/// FMA when the target ISA has one.  Only reassociation-tolerant kernels
/// may use this (DESIGN.md section 7).
inline vd mul_add(vd a, vd b, vd c) { return a * b + c; }

/// a*b + c with exactly one rounding on every target (lane-wise std::fma;
/// a libm call where the hardware lacks FMA — correct first, fast second).
inline vd fmadd(vd a, vd b, vd c) {
  vd r = c;
  for (int i = 0; i < kWidth; ++i) r[i] = std::fma(a[i], b[i], c[i]);
  return r;
}

#if GBSP_SIMD_VECTOR_EXT

/// Lane-wise max.  (GCC/Clang support the ternary operator on vector
/// conditions; this compiles to maxpd and friends.)
inline vd max(vd a, vd b) { return a > b ? a : b; }

/// Lane-wise |v| via sign-bit clearing — byte-identical to std::abs
/// (max(v, -v) would map +0.0 to -0.0).
inline vd abs(vd v) {
  const vmask sign = (vmask)broadcast(-0.0);
  return (vd)((vmask)v & ~sign);
}

/// Lanes of `a` where `m` is all-ones, 0.0 elsewhere.
inline vd mask(vd a, vmask m) { return (vd)((vmask)a & m); }

#else

inline vd max(vd a, vd b) {
  for (int i = 0; i < kWidth; ++i) a.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  return a;
}
inline vd abs(vd v) {
  for (int i = 0; i < kWidth; ++i) v.lane[i] = std::abs(v.lane[i]);
  return v;
}
inline vmask operator>(vd a, vd b) {
  vmask m;
  for (int i = 0; i < kWidth; ++i) m.lane[i] = a.lane[i] > b.lane[i] ? -1 : 0;
  return m;
}
inline vd mask(vd a, vmask m) {
  for (int i = 0; i < kWidth; ++i) {
    if (m.lane[i] == 0) a.lane[i] = 0.0;
  }
  return a;
}

#endif  // GBSP_SIMD_VECTOR_EXT

/// Lane-wise IEEE sqrt (exact, so vectorizing it is always legal).
inline vd sqrt(vd v) {
  vd r = v;
  for (int i = 0; i < kWidth; ++i) r[i] = std::sqrt(v[i]);
  return r;
}

/// Horizontal max over lanes.
inline double hmax(vd v) {
  double m = v[0];
  for (int i = 1; i < kWidth; ++i) m = m > v[i] ? m : v[i];
  return m;
}

/// Horizontal sum over lanes (left-to-right).
inline double hsum(vd v) {
  double s = v[0];
  for (int i = 1; i < kWidth; ++i) s += v[i];
  return s;
}

// ---------------------------------------------------------------------------
// Stride-2 lane rearrangement, used by the ocean restriction/prolongation
// rows whose natural access pattern pairs fine columns (2J-1, 2J).

#if GBSP_SIMD_VECTOR_EXT

namespace detail {
#if GBSP_SIMD_WIDTH == 2
inline constexpr vmask kEven = {0, 2};
inline constexpr vmask kOdd = {1, 3};
inline constexpr vmask kILo = {0, 2};
inline constexpr vmask kIHi = {1, 3};
#elif GBSP_SIMD_WIDTH == 4
inline constexpr vmask kEven = {0, 2, 4, 6};
inline constexpr vmask kOdd = {1, 3, 5, 7};
inline constexpr vmask kILo = {0, 4, 1, 5};
inline constexpr vmask kIHi = {2, 6, 3, 7};
#elif GBSP_SIMD_WIDTH == 8
inline constexpr vmask kEven = {0, 2, 4, 6, 8, 10, 12, 14};
inline constexpr vmask kOdd = {1, 3, 5, 7, 9, 11, 13, 15};
inline constexpr vmask kILo = {0, 8, 1, 9, 2, 10, 3, 11};
inline constexpr vmask kIHi = {4, 12, 5, 13, 6, 14, 7, 15};
#else
#error "GBSP_SIMD_WIDTH must be 2, 4, or 8 with vector extensions"
#endif
}  // namespace detail

#if defined(__clang__)
namespace detail {
template <int... I>
inline vd shuffle2(vd a, vd b) {
  return __builtin_shufflevector(a, b, I...);
}
}  // namespace detail
#endif

/// Splits the contiguous 2W-lane stream [a | b] into its even-position and
/// odd-position lanes: even = stream[0,2,...], odd = stream[1,3,...].
inline void deinterleave(vd a, vd b, vd* even, vd* odd) {
#if defined(__clang__)
#if GBSP_SIMD_WIDTH == 2
  *even = detail::shuffle2<0, 2>(a, b);
  *odd = detail::shuffle2<1, 3>(a, b);
#elif GBSP_SIMD_WIDTH == 4
  *even = detail::shuffle2<0, 2, 4, 6>(a, b);
  *odd = detail::shuffle2<1, 3, 5, 7>(a, b);
#else
  *even = detail::shuffle2<0, 2, 4, 6, 8, 10, 12, 14>(a, b);
  *odd = detail::shuffle2<1, 3, 5, 7, 9, 11, 13, 15>(a, b);
#endif
#else
  *even = __builtin_shuffle(a, b, detail::kEven);
  *odd = __builtin_shuffle(a, b, detail::kOdd);
#endif
}

/// Inverse of deinterleave: merges even/odd lane vectors back into the
/// contiguous stream [lo | hi] with lo = {e0, o0, e1, o1, ...}.
inline void interleave(vd even, vd odd, vd* lo, vd* hi) {
#if defined(__clang__)
#if GBSP_SIMD_WIDTH == 2
  *lo = detail::shuffle2<0, 2>(even, odd);
  *hi = detail::shuffle2<1, 3>(even, odd);
#elif GBSP_SIMD_WIDTH == 4
  *lo = detail::shuffle2<0, 4, 1, 5>(even, odd);
  *hi = detail::shuffle2<2, 6, 3, 7>(even, odd);
#else
  *lo = detail::shuffle2<0, 8, 1, 9, 2, 10, 3, 11>(even, odd);
  *hi = detail::shuffle2<4, 12, 5, 13, 6, 14, 7, 15>(even, odd);
#endif
#else
  *lo = __builtin_shuffle(even, odd, detail::kILo);
  *hi = __builtin_shuffle(even, odd, detail::kIHi);
#endif
}

#else  // scalar fallback

inline void deinterleave(vd a, vd b, vd* even, vd* odd) {
  double s[2 * kWidth];
  store(s, a);
  store(s + kWidth, b);
  for (int i = 0; i < kWidth; ++i) {
    (*even)[i] = s[2 * i];
    (*odd)[i] = s[2 * i + 1];
  }
}

inline void interleave(vd even, vd odd, vd* lo, vd* hi) {
  double s[2 * kWidth];
  for (int i = 0; i < kWidth; ++i) {
    s[2 * i] = even[i];
    s[2 * i + 1] = odd[i];
  }
  *lo = load(s);
  *hi = load(s + kWidth);
}

#endif  // GBSP_SIMD_VECTOR_EXT

}  // namespace gbsp::simd
