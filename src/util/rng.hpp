// Deterministic, seedable random number generation.
//
// All workload generators in this repository draw from these generators so
// that every experiment is reproducible from a single seed. We avoid
// std::mt19937 because its state is large and its distributions are not
// guaranteed bit-identical across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace gbsp {

/// SplitMix64 — tiny, fast, passes BigCrush; used for seeding and for
/// lightweight per-entity streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator for workload synthesis.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace gbsp
