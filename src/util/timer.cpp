#include "util/timer.hpp"

#include <ctime>
#include <thread>

namespace gbsp {

std::int64_t ThreadCpuTimer::now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
#endif
}

void precise_sleep_us(double us) {
  if (us <= 0) return;
  WallTimer t;
  // Sleep coarsely while more than one scheduler quantum remains, then spin.
  constexpr double kSpinThresholdUs = 200.0;
  while (us - t.elapsed_us() > kSpinThresholdUs) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>((us - t.elapsed_us()) - kSpinThresholdUs)));
  }
  while (t.elapsed_us() < us) {
    // busy-wait for the tail
  }
}

}  // namespace gbsp
