// Column-aligned plain-text tables (the benches print paper-style tables)
// and CSV output for downstream plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gbsp {

/// Builds a table row by row and renders it with aligned columns.
///
/// Cells are strings; numeric helpers format with a fixed number of
/// significant digits to match the paper's presentation (e.g. "2.23", "17.0").
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  TextTable& row();
  TextTable& add(const std::string& cell);
  TextTable& add(const char* cell) { return add(std::string(cell)); }
  TextTable& add(double value, int decimals = 2);
  TextTable& add(std::int64_t value);
  TextTable& add_missing();  ///< The paper prints "-" for unavailable cells.

  void render(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Comma-separated dump with the same header/rows (for plotting scripts).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats like the paper's tables: trims trailing zeros ("4.0" stays,
/// "0.770000" becomes "0.77").
std::string format_number(double value, int decimals = 2);

}  // namespace gbsp
