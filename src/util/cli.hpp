// Minimal command-line parsing for benches and examples.
//
// Supports `--flag`, `--key value`, and `--key=value`. Unknown arguments are
// collected as positionals. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gbsp {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has_flag(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Comma-separated integer list, e.g. `--procs 1,2,4,8`.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] const std::string& program_name() const { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> lookup(
      const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

}  // namespace gbsp
