#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gbsp {

std::string format_number(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::add(double value, int decimals) {
  return add(format_number(value, decimals));
}

TextTable& TextTable::add(std::int64_t value) {
  return add(std::to_string(value));
}

TextTable& TextTable::add_missing() { return add("-"); }

void TextTable::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = (c < cells.size()) ? cells[c] : std::string();
      os << "  " << s;
      for (std::size_t pad = s.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

void TextTable::render_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace gbsp
