#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gbsp {

namespace {

bool is_option(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_option(arg)) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !is_option(argv[i + 1])) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";  // bare flag
    }
  }
}

std::optional<std::string> CliArgs::lookup(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

bool CliArgs::has_flag(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto v = lookup(name);
  return (v && !v->empty()) ? *v : fallback;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

std::vector<std::int64_t> CliArgs::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  auto v = lookup(name);
  if (!v || v->empty()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& s = *v;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoll(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace gbsp
