// Timing utilities: wall-clock and per-thread CPU timers, plus a hybrid
// sleep that stays accurate at microsecond granularity (needed when the
// machine emulator charges superstep latencies of a few microseconds).
#pragma once

#include <chrono>
#include <cstdint>

namespace gbsp {

/// Monotonic wall-clock stopwatch.
///
/// Started on construction; `elapsed_s()` / `elapsed_us()` read without
/// stopping, `restart()` rebases.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID).
///
/// Measures time this thread actually spent executing, excluding time it was
/// descheduled — the right clock for measuring BSP "work" on an oversubscribed
/// host where worker threads share cores.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }
  [[nodiscard]] double elapsed_us() const {
    return static_cast<double>(now_ns() - start_) * 1e-3;
  }

  /// Raw per-thread CPU time in nanoseconds since an unspecified epoch.
  static std::int64_t now_ns();

 private:
  std::int64_t start_;
};

/// Sleep for `us` microseconds with sub-millisecond accuracy.
///
/// OS sleeps typically have ~50us-1ms granularity; this sleeps for the bulk
/// and spins for the remainder, so emulated superstep latencies down to ~1us
/// are charged faithfully.
void precise_sleep_us(double us);

}  // namespace gbsp
