// Shared compute-kernel layer (DESIGN.md section 7).
//
// The runtime's message path was made cheap in the previous round of work,
// which leaves the local-computation term W of the paper's cost model
// T = W + g*H + L*S as the bottleneck in every application benchmark.  This
// layer holds the tuned kernels the applications share:
//
//   * a packed, register-blocked dgemm micro-kernel (the W term of Cannon's
//     algorithm and the sequential blocked baseline);
//   * a batched structure-of-arrays interaction kernel (the W term of the
//     N-body force phase, both direct-sum and Barnes–Hut evaluation).
//
// The vectorized ocean row kernels live with their scalar references in
// apps/ocean/kernels.hpp (they are bound to the ocean ghost-row layout);
// they are built on the same simd.hpp vector abstraction.
//
// Reassociation contract: both kernels here MAY reassociate and contract
// (their consumers compare against oracles with n-scaled tolerances, never
// bitwise).  Kernels that must stay bit-exact live in apps/ocean.
#pragma once

#include <cstddef>
#include <vector>

namespace gbsp::kernels {

// ---------------------------------------------------------------------------
// Packed, register-blocked dgemm.

/// C(M x N, row stride ldc) += A(M x K, lda) * B(K x N, ldb), row-major.
///
/// A and B are packed into register-tile-friendly panels in recycled
/// per-thread scratch (zero-padded at edges, so any M, N, K is legal), then
/// multiplied with an MR x NR register-tile micro-kernel (MR = 4 rows,
/// NR = 2 SIMD vectors of columns).  The packing scratch is thread_local
/// and grows monotonically; it is recycled across calls and freed at thread
/// exit (DESIGN.md section 7, "packing scratch lifetime").
void dgemm_add(const double* A, int lda, const double* B, int ldb, double* C,
               int ldc, int M, int N, int K);

/// Square drop-in for the scalar block_multiply_add: C += A * B for
/// contiguous row-major n x n blocks.
inline void dgemm_add(const double* A, const double* B, double* C, int n) {
  dgemm_add(A, n, B, n, C, n, n, n, n);
}

// ---------------------------------------------------------------------------
// Batched SoA interaction kernel (softened inverse-square gravity).

/// Accumulates onto (*ax, *ay, *az) the acceleration at target (tx, ty, tz)
/// from `ns` point-mass sources in structure-of-arrays form:
///
///     acc += sum_s  m[s] * d_s / (|d_s|^2 + eps2)^(3/2),   d_s = s - t.
///
/// Sources exactly at the target contribute zero: for eps2 > 0 that falls
/// out of d_s = 0, and for eps2 == 0 the kernel masks the lane instead of
/// producing inf * 0 — i.e. self-interactions are always skipped, matching
/// the scalar loops this replaces.
void accumulate_accel(const double* sx, const double* sy, const double* sz,
                      const double* sm, std::size_t ns, double tx, double ty,
                      double tz, double eps2, double* ax, double* ay,
                      double* az);

/// Reusable SoA batch of interaction sources (positions + masses), the
/// staging buffer between tree traversal / body lists and
/// accumulate_accel.
struct InteractionSoA {
  std::vector<double> x, y, z, m;

  void clear() {
    x.clear();
    y.clear();
    z.clear();
    m.clear();
  }
  void reserve(std::size_t n) {
    x.reserve(n);
    y.reserve(n);
    z.reserve(n);
    m.reserve(n);
  }
  void push_back(double px, double py, double pz, double pm) {
    x.push_back(px);
    y.push_back(py);
    z.push_back(pz);
    m.push_back(pm);
  }
  [[nodiscard]] std::size_t size() const { return x.size(); }
};

}  // namespace gbsp::kernels
