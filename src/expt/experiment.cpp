#include "expt/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "paperdata/paperdata.hpp"
#include "util/table.hpp"

namespace gbsp {

const SweepRow* SweepResult::find(int size, int np) const {
  for (const auto& r : rows) {
    if (r.size == size && r.np == np) return &r;
  }
  return nullptr;
}

SweepResult run_sweep(AppAdapter& app, const SweepOptions& opts) {
  SweepResult result;
  result.app = app.name();
  const auto machines = emulated_machines();

  for (int size : opts.sizes) {
    if (opts.verbose) {
      std::cerr << "[" << result.app << "] preparing size " << size << "\n";
    }
    app.prepare(size);

    const std::vector<int> nps =
        opts.nprocs.empty() ? app.nprocs_list() : opts.nprocs;

    // Trace every processor count once.
    std::vector<RunStats> traces;
    for (int np : nps) {
      if (opts.verbose) {
        std::cerr << "[" << result.app << "] size " << size << " np " << np
                  << " ..." << std::flush;
      }
      traces.push_back(execute_traced(np, app.program(np)));
      if (opts.verbose) {
        std::cerr << " " << traces.back().summary() << "\n";
      }
    }

    // Calibrate each machine's cpu_scale so that the one-processor work
    // matches the paper's one-processor time for this (app, size, machine).
    const double our_w1 = traces.front().W_s();
    std::array<double, 3> scale{};
    for (int m = 0; m < 3; ++m) {
      const double paper_t1 =
          paper_calibration_time(result.app, size, m);
      scale[static_cast<std::size_t>(m)] =
          std::isfinite(paper_t1) && our_w1 > 0
              ? calibrate_cpu_scale(paper_t1, our_w1)
              : 1.0;
    }

    // Price every trace for every machine.
    std::array<double, 3> t1{};
    for (std::size_t i = 0; i < nps.size(); ++i) {
      SweepRow row;
      row.size = size;
      row.np = nps[i];
      const RunStats& stats = traces[i];
      const double sgi_scale = scale[0];
      row.W_sgi_s = stats.W_s() * sgi_scale;
      row.H = stats.H();
      row.S = stats.S();
      row.total_work_sgi_s = stats.total_work_s() * sgi_scale;
      for (int m = 0; m < 3; ++m) {
        MachineMeasurement& mm = row.machines[static_cast<std::size_t>(m)];
        const EmulatedMachine& machine = machines[static_cast<std::size_t>(m)];
        if (row.np > machine.max_procs()) continue;
        mm.available = true;
        mm.time_s = price_trace(stats, machine, scale[static_cast<std::size_t>(m)]);
        const CostBreakdown pred =
            predict_cost(stats, machine.profile->params_for(row.np),
                         scale[static_cast<std::size_t>(m)]);
        mm.pred_s = pred.total_s();
        mm.comm_s = pred.comm_s();
        if (row.np == 1) t1[static_cast<std::size_t>(m)] = mm.time_s;
        mm.spdp = t1[static_cast<std::size_t>(m)] > 0
                      ? t1[static_cast<std::size_t>(m)] / mm.time_s
                      : 0.0;
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

namespace {

void add_machine_cells(TextTable& t, const MachineMeasurement& mm) {
  if (!mm.available) {
    t.add_missing().add_missing().add_missing();
    return;
  }
  t.add(mm.pred_s).add(mm.time_s).add(mm.spdp, 1);
}

void add_paper_cells(TextTable& t, const PaperRow& pr, int machine) {
  auto cell = [&](double v, int dec) {
    if (std::isfinite(v)) {
      t.add(v, dec);
    } else {
      t.add_missing();
    }
  };
  cell(pr.pred(machine), 2);
  cell(pr.time(machine), 2);
  cell(pr.spdp(machine), 1);
}

}  // namespace

void render_appendix_table(std::ostream& os, const SweepResult& result,
                           bool include_paper, bool csv) {
  TextTable t({"who", "size", "NP", "SGIpred", "SGItime", "SGIspdp",
               "CENpred", "CENtime", "CENspdp", "PCpred", "PCtime", "PCspdp",
               "W", "H", "S", "TWk"});
  for (const auto& r : result.rows) {
    t.row().add("ours").add(std::int64_t{r.size}).add(std::int64_t{r.np});
    for (int m = 0; m < 3; ++m) {
      add_machine_cells(t, r.machines[static_cast<std::size_t>(m)]);
    }
    t.add(r.W_sgi_s)
        .add(static_cast<std::int64_t>(r.H))
        .add(static_cast<std::int64_t>(r.S))
        .add(r.total_work_sgi_s);
    if (include_paper) {
      if (auto pr = paper_row(result.app, r.size, r.np)) {
        t.row().add("paper").add(std::int64_t{r.size}).add(
            std::int64_t{r.np});
        for (int m = 0; m < 3; ++m) add_paper_cells(t, *pr, m);
        t.add(pr->W)
            .add(static_cast<std::int64_t>(pr->H))
            .add(std::int64_t{pr->S})
            .add(pr->total_work16);
      }
    }
  }
  if (csv) {
    t.render_csv(os);
    return;
  }
  os << "== " << result.app << ": Appendix-C-style sweep ==\n";
  t.render(os);
}

void render_figure11(std::ostream& os, const SweepResult& result, int size) {
  static const char* kNames[3] = {"SGI", "Cenju", "PC"};
  os << "== Figure 1.1 style: " << result.app << " (size " << size
     << ") actual vs predicted vs predicted-comm ==\n";
  TextTable t({"machine", "NP", "actual", "predicted", "pred-comm",
               "paper-time", "paper-pred"});
  for (int m = 0; m < 3; ++m) {
    for (const auto& r : result.rows) {
      if (r.size != size) continue;
      const auto& mm = r.machines[static_cast<std::size_t>(m)];
      if (!mm.available) continue;
      t.row().add(kNames[m]).add(std::int64_t{r.np});
      t.add(mm.time_s).add(mm.pred_s).add(mm.comm_s, 3);
      if (auto pr = paper_row(result.app, size, r.np)) {
        if (std::isfinite(pr->time(m))) {
          t.add(pr->time(m));
        } else {
          t.add_missing();
        }
        if (std::isfinite(pr->pred(m))) {
          t.add(pr->pred(m));
        } else {
          t.add_missing();
        }
      } else {
        t.add_missing().add_missing();
      }
    }
  }
  t.render(os);
}

void render_summary(std::ostream& os, const SweepResult& result, int size) {
  static const char* kNames[3] = {"SGI(16)", "Cenju(16)", "PC(8)"};
  const int np_for[3] = {16, 16, 8};
  os << "== Figure 3.1/3.2 style summary: " << result.app << " (size "
     << size << ") ==\n";
  TextTable t({"machine", "time", "spdp", "paper-time", "paper-spdp"});
  for (int m = 0; m < 3; ++m) {
    const SweepRow* r = result.find(size, np_for[m]);
    if (r == nullptr || !r->machines[static_cast<std::size_t>(m)].available) {
      continue;
    }
    const auto& mm = r->machines[static_cast<std::size_t>(m)];
    t.row().add(kNames[m]).add(mm.time_s).add(mm.spdp, 1);
    if (auto pr = paper_row(result.app, size, np_for[m])) {
      if (std::isfinite(pr->time(m))) {
        t.add(pr->time(m));
      } else {
        t.add_missing();
      }
      if (std::isfinite(pr->spdp(m))) {
        t.add(pr->spdp(m), 1);
      } else {
        t.add_missing();
      }
    } else {
      t.add_missing().add_missing();
    }
  }
  t.render(os);
  const SweepRow* r16 = result.find(size, 16);
  if (r16 != nullptr) {
    os << "  abstract: W=" << format_number(r16->W_sgi_s) << "s H=" << r16->H
       << " S=" << r16->S
       << " total_work(16)=" << format_number(r16->total_work_sgi_s) << "s";
    if (auto pr = paper_row(result.app, size, 16)) {
      os << "   [paper: W=" << format_number(pr->W) << " H=" << pr->H
         << " S=" << pr->S << " TWk=" << format_number(pr->total_work16)
         << "]";
    }
    os << "\n";
  }
}

void render_deviation_summary(std::ostream& os, const SweepResult& result) {
  std::vector<double> time_dev, spdp_dev;
  for (const auto& r : result.rows) {
    const auto pr = paper_row(result.app, r.size, r.np);
    if (!pr) continue;
    for (int m = 0; m < 3; ++m) {
      const auto& mm = r.machines[static_cast<std::size_t>(m)];
      if (!mm.available) continue;
      if (std::isfinite(pr->time(m)) && pr->time(m) > 0) {
        time_dev.push_back(std::abs(mm.time_s - pr->time(m)) / pr->time(m));
      }
      if (std::isfinite(pr->spdp(m)) && pr->spdp(m) > 0) {
        spdp_dev.push_back(std::abs(mm.spdp - pr->spdp(m)) / pr->spdp(m));
      }
    }
  }
  auto median = [](std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  os << "== " << result.app << " deviation vs paper: median |time| dev "
     << format_number(100 * median(time_dev), 1) << "%, median |speedup| dev "
     << format_number(100 * median(spdp_dev), 1) << "% over "
     << time_dev.size() << " cells ==\n";
}

}  // namespace gbsp
