// Experiment harness: runs an application over (size, nprocs) grids under
// the machine emulator and renders paper-style tables with the paper's own
// numbers alongside.
//
// Methodology (DESIGN.md section 2): each (app, size, np) cell is executed
// once under the serialized scheduler, which yields the machine-independent
// trace (W, H, S, per-superstep work and communication). The trace is then
// priced for each of the paper's three platforms. The per-(app, size,
// machine) cpu_scale comes from calibrating our measured one-processor work
// against the paper's one-processor time — everything at p > 1 is emergent.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "emul/emulator.hpp"

namespace gbsp {

/// Per-application adapter the sweep driver drives.
class AppAdapter {
 public:
  virtual ~AppAdapter() = default;

  /// Name matching the paperdata key ("ocean", "mst", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Generates the workload for one problem size (called once per size).
  virtual void prepare(int size) = 0;

  /// The SPMD program for `nprocs` processors over the prepared workload.
  /// Called once per (size, np) cell; any per-np setup (partitioning, ORB)
  /// happens here, outside the measured BSP computation, matching the
  /// paper's assumption that inputs arrive pre-partitioned.
  virtual std::function<void(Worker&)> program(int nprocs) = 0;

  /// Processor counts to sweep (paper default 1,2,4,8,16; matmult 1,4,9,16).
  [[nodiscard]] virtual std::vector<int> nprocs_list() const {
    return {1, 2, 4, 8, 16};
  }
};

/// Factory for the six paper applications ("ocean", "nbody", "mst", "sp",
/// "msp", "matmult").
std::unique_ptr<AppAdapter> make_app_adapter(const std::string& app);

struct MachineMeasurement {
  bool available = false;  ///< machine supports this processor count
  double pred_s = 0.0;     ///< coarse BSP prediction W + gH + LS
  double time_s = 0.0;     ///< emulated ("actual") time
  double comm_s = 0.0;     ///< predicted communication incl. sync (Fig 1.1)
  double spdp = 0.0;       ///< time_s(1) / time_s(np)
};

struct SweepRow {
  int size = 0;
  int np = 0;
  double W_sgi_s = 0.0;          ///< work depth in calibrated SGI seconds
  std::uint64_t H = 0;
  std::uint64_t S = 0;
  double total_work_sgi_s = 0.0;  ///< total work in calibrated SGI seconds
  std::array<MachineMeasurement, 3> machines;  ///< SGI, Cenju, PC
};

struct SweepResult {
  std::string app;
  std::vector<SweepRow> rows;
  [[nodiscard]] const SweepRow* find(int size, int np) const;
};

struct SweepOptions {
  std::vector<int> sizes;      ///< problem sizes to run
  std::vector<int> nprocs;     ///< override adapter's list when non-empty
  bool verbose = false;        ///< progress on stderr
};

/// Runs the full sweep: trace once per (size, np), price per machine,
/// calibrate per (size, machine) against the paper's one-processor column.
SweepResult run_sweep(AppAdapter& app, const SweepOptions& opts);

/// Appendix-C-style table: our measured/emulated values with the paper's
/// row (when it exists) printed beneath each of ours. With `csv`, emits
/// comma-separated rows (for plotting) instead of the aligned table.
void render_appendix_table(std::ostream& os, const SweepResult& result,
                           bool include_paper = true, bool csv = false);

/// Figure 1.1: actual vs predicted vs predicted-communication series for one
/// problem size, per machine.
void render_figure11(std::ostream& os, const SweepResult& result, int size);

/// Figures 3.1/3.2-style summary for one (large) size.
void render_summary(std::ostream& os, const SweepResult& result, int size);

/// Quantifies agreement with the paper: median relative deviations of
/// emulated time and speedup over all cells the paper reports.
void render_deviation_summary(std::ostream& os, const SweepResult& result);

}  // namespace gbsp
