// AppAdapter implementations wiring the six paper applications into the
// sweep driver. Workload generation and per-np setup (partitioning, ORB)
// happen outside the traced BSP computation, matching the paper's
// assumption that inputs arrive pre-partitioned.
#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "apps/matmul/matmul.hpp"
#include "apps/mst/mst.hpp"
#include "apps/nbody/nbody.hpp"
#include "apps/nbody/orb.hpp"
#include "apps/nbody/plummer.hpp"
#include "apps/ocean/ocean_bsp.hpp"
#include "apps/sp/shortest_paths.hpp"
#include "expt/experiment.hpp"
#include "graph/geometric.hpp"
#include "util/rng.hpp"

namespace gbsp {

namespace {

constexpr std::uint64_t kWorkloadSeed = 0x9b5f5eed0ULL;

class OceanAdapter final : public AppAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "ocean"; }

  void prepare(int size) override {
    cfg_ = OceanConfig{};
    cfg_.n = size;
    cfg_.timesteps = 2;
    // Keep per-superstep work well above the host's measurement floor
    // (see OceanConfig::work_amplification); constant per size, so it
    // cancels through calibration.
    cfg_.work_amplification = std::max(1, 8192 / cfg_.interior());
    cfg_.validate();
  }

  std::function<void(Worker&)> program(int nprocs) override {
    (void)nprocs;
    const std::size_t sz =
        static_cast<std::size_t>(cfg_.n) * static_cast<std::size_t>(cfg_.n);
    psi_.assign(sz, 0.0);
    zeta_.assign(sz, 0.0);
    return make_ocean_program(cfg_, &psi_, &zeta_, &info_);
  }

 private:
  OceanConfig cfg_;
  std::vector<double> psi_, zeta_;
  OceanRunInfo info_;
};

class NbodyAdapter final : public AppAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "nbody"; }

  void prepare(int size) override {
    bodies_ = plummer_model(size, kWorkloadSeed);
    cfg_ = NbodyConfig{};
    cfg_.iterations = 1;
  }

  std::function<void(Worker&)> program(int nprocs) override {
    assign_ = orb_assign(bodies_, nprocs);
    out_.assign(bodies_.size(), Body{});
    return make_nbody_program(bodies_, assign_, cfg_, &out_);
  }

 private:
  std::vector<Body> bodies_;
  std::vector<int> assign_;
  std::vector<Body> out_;
  NbodyConfig cfg_;
};

class GraphAdapterBase : public AppAdapter {
 public:
  void prepare(int size) override {
    gg_ = make_geometric_graph(size, kWorkloadSeed + size);
    parts_.clear();
  }

 protected:
  const GraphPartition& partition_for(int nprocs) {
    auto it = parts_.find(nprocs);
    if (it == parts_.end()) {
      it = parts_
               .emplace(nprocs,
                        partition_by_stripes(gg_.graph, gg_.points, nprocs))
               .first;
    }
    return it->second;
  }

  GeometricGraph gg_;

 private:
  std::map<int, GraphPartition> parts_;
};

class MstAdapter final : public GraphAdapterBase {
 public:
  [[nodiscard]] std::string name() const override { return "mst"; }

  std::function<void(Worker&)> program(int nprocs) override {
    return make_mst_program(partition_for(nprocs), MstConfig{}, &result_);
  }

 private:
  MstParallelResult result_;
};

class SpAdapter final : public GraphAdapterBase {
 public:
  explicit SpAdapter(int sources) : num_sources_(sources) {}

  [[nodiscard]] std::string name() const override {
    return num_sources_ == 1 ? "sp" : "msp";
  }

  std::function<void(Worker&)> program(int nprocs) override {
    std::vector<int> sources;
    Xoshiro256 rng(kWorkloadSeed);
    while (static_cast<int>(sources.size()) < num_sources_) {
      const int s = static_cast<int>(
          rng.uniform_int(static_cast<std::uint64_t>(gg_.graph.num_nodes())));
      if (std::find(sources.begin(), sources.end(), s) == sources.end()) {
        sources.push_back(s);
      }
    }
    out_.assign(sources.size(),
                std::vector<double>(
                    static_cast<std::size_t>(gg_.graph.num_nodes()), 0.0));
    return make_sp_program(partition_for(nprocs), sources, SpConfig{}, &out_);
  }

 private:
  int num_sources_;
  std::vector<std::vector<double>> out_;
};

class MatmultAdapter final : public AppAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "matmult"; }

  void prepare(int size) override {
    A_ = random_matrix(size, kWorkloadSeed);
    B_ = random_matrix(size, kWorkloadSeed + 1);
  }

  std::function<void(Worker&)> program(int nprocs) override {
    (void)nprocs;
    C_ = Matrix(A_.n());
    return make_cannon_program(A_, B_, &C_);
  }

  [[nodiscard]] std::vector<int> nprocs_list() const override {
    return {1, 4, 9, 16};  // perfect squares, as in the paper
  }

 private:
  Matrix A_, B_, C_;
};

}  // namespace

std::unique_ptr<AppAdapter> make_app_adapter(const std::string& app) {
  if (app == "ocean") return std::make_unique<OceanAdapter>();
  if (app == "nbody") return std::make_unique<NbodyAdapter>();
  if (app == "mst") return std::make_unique<MstAdapter>();
  if (app == "sp") return std::make_unique<SpAdapter>(1);
  if (app == "msp") return std::make_unique<SpAdapter>(25);
  if (app == "matmult") return std::make_unique<MatmultAdapter>();
  throw std::invalid_argument("unknown application: " + app);
}

}  // namespace gbsp
