#include "apps/sort/sample_sort.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/collectives.hpp"

namespace gbsp {

namespace {

/// Merges sorted runs pairwise until one remains.
std::vector<std::uint64_t> merge_runs(
    std::vector<std::vector<std::uint64_t>> runs) {
  if (runs.empty()) return {};
  while (runs.size() > 1) {
    std::vector<std::vector<std::uint64_t>> next;
    for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
      std::vector<std::uint64_t> merged;
      merged.resize(runs[i].size() + runs[i + 1].size());
      std::merge(runs[i].begin(), runs[i].end(), runs[i + 1].begin(),
                 runs[i + 1].end(), merged.begin());
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) next.push_back(std::move(runs.back()));
    runs = std::move(next);
  }
  return std::move(runs.front());
}

/// The split-phase trick: the regular sample at sorted position `pos` can be
/// produced *without sorting* by std::nth_element, whose partition property
/// (everything left of the nth is <=, everything right is >=) also lets the
/// next, larger position be selected from the remaining right part only.
/// For std::uint64_t keys the value at each order statistic is unique as a
/// bit pattern, so the sample array is bit-identical to sampling the sorted
/// run — which is what makes the split and rigid programs comparable.
std::vector<std::uint64_t> regular_samples_unsorted(
    std::vector<std::uint64_t>& local, int p) {
  std::vector<std::uint64_t> samples;
  if (local.empty()) return samples;
  bool have_prev = false;
  std::size_t prev_pos = 0;
  for (int k = 0; k < p; ++k) {
    const std::size_t pos = local.size() * static_cast<std::size_t>(k) /
                            static_cast<std::size_t>(p);
    if (have_prev && pos == prev_pos) {
      samples.push_back(samples.back());
      continue;
    }
    const auto base =
        local.begin() +
        static_cast<std::ptrdiff_t>(have_prev ? prev_pos + 1 : 0);
    std::nth_element(base, local.begin() + static_cast<std::ptrdiff_t>(pos),
                     local.end());
    samples.push_back(local[pos]);
    prev_pos = pos;
    have_prev = true;
  }
  return samples;
}

}  // namespace

std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SyncMode mode) {
  if (out->size() != input.size()) {
    throw std::invalid_argument("sample_sort: output size mismatch");
  }
  return [&input, out, mode](Worker& w) {
    const int p = w.nprocs();
    const std::size_t n = input.size();
    const bool split = mode == SyncMode::SplitPhase;

    // Blockwise share of the shared input.
    const std::size_t lo = n * static_cast<std::size_t>(w.pid()) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = n * (static_cast<std::size_t>(w.pid()) + 1) /
                           static_cast<std::size_t>(p);
    std::vector<std::uint64_t> local(input.begin() + static_cast<std::ptrdiff_t>(lo),
                                     input.begin() + static_cast<std::ptrdiff_t>(hi));
    if (!split) std::sort(local.begin(), local.end());

    if (p == 1) {
      if (split) std::sort(local.begin(), local.end());
      std::copy(local.begin(), local.end(), out->begin());
      return;
    }

    // --- superstep 1: regular samples to processor 0 -----------------------
    std::vector<std::uint64_t> samples;
    if (split) {
      // Select the samples by order statistics, ship them, and run the
      // dominant local sort inside the split-phase window while they travel.
      samples = regular_samples_unsorted(local, p);
      if (w.pid() != 0) w.send_array(0, samples);
      w.sync_begin();
      std::sort(local.begin(), local.end());
      w.sync_end();
    } else {
      for (int k = 0; k < p; ++k) {
        if (!local.empty()) {
          samples.push_back(local[local.size() * static_cast<std::size_t>(k) /
                                  static_cast<std::size_t>(p)]);
        }
      }
      if (w.pid() != 0) {
        w.send_array(0, samples);
      }
      w.sync();
    }

    // --- superstep 2: splitter selection and broadcast ----------------------
    std::vector<std::uint64_t> splitters;
    if (w.pid() == 0) {
      std::vector<std::uint64_t> all = samples;
      while (const Message* m = w.get_message()) {
        std::vector<std::uint64_t> s;
        m->copy_array(s);
        all.insert(all.end(), s.begin(), s.end());
      }
      std::sort(all.begin(), all.end());
      for (int j = 1; j < p; ++j) {
        if (!all.empty()) {
          splitters.push_back(
              all[std::min(all.size() - 1,
                           all.size() * static_cast<std::size_t>(j) /
                               static_cast<std::size_t>(p))]);
        }
      }
      for (int d = 1; d < p; ++d) w.send_array(d, splitters);
    }
    w.sync();
    if (w.pid() != 0) {
      const Message* m = w.get_message();
      if (m == nullptr) throw std::logic_error("sample_sort: no splitters");
      m->copy_array(splitters);
    }

    // --- superstep 3: personalized all-to-all of buckets --------------------
    std::size_t from = 0;
    std::vector<std::vector<std::uint64_t>> keep(1);
    for (int d = 0; d < p; ++d) {
      std::size_t to = local.size();
      if (d < static_cast<int>(splitters.size())) {
        to = static_cast<std::size_t>(
            std::upper_bound(local.begin(), local.end(),
                             splitters[static_cast<std::size_t>(d)]) -
            local.begin());
      }
      if (d == w.pid()) {
        keep[0].assign(local.begin() + static_cast<std::ptrdiff_t>(from),
                       local.begin() + static_cast<std::ptrdiff_t>(to));
      } else if (to > from) {
        w.send_array(d, local.data() + from, to - from);
      }
      from = to;
    }
    w.sync();

    std::vector<std::vector<std::uint64_t>> runs = std::move(keep);
    while (const Message* m = w.get_message()) {
      std::vector<std::uint64_t> run;
      m->copy_array(run);
      runs.push_back(std::move(run));
    }
    std::size_t my_len = 0;
    for (const auto& r : runs) my_len += r.size();

    // --- superstep 4: output offsets via allgather --------------------------
    const auto lengths = allgather(w, static_cast<std::uint64_t>(my_len));
    std::size_t offset = 0;
    for (int q = 0; q < w.pid(); ++q) {
      offset += static_cast<std::size_t>(lengths[static_cast<std::size_t>(q)]);
    }

    // --- tail: merge sorted runs into the output ----------------------------
    const std::vector<std::uint64_t> result = merge_runs(std::move(runs));
    if (!result.empty()) {
      std::memcpy(out->data() + offset, result.data(),
                  result.size() * sizeof(std::uint64_t));
    }
  };
}

std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs, SyncMode mode) {
  std::vector<std::uint64_t> out(input.size(), 0);
  Config cfg;
  cfg.nprocs = nprocs;
  Runtime rt(cfg);
  rt.run(make_sample_sort_program(input, &out, mode));
  return out;
}

}  // namespace gbsp
