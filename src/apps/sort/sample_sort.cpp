#include "apps/sort/sample_sort.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "core/collectives.hpp"

namespace gbsp {

namespace {

/// LSD radix sort for uint64 keys: 8 stable counting passes of one byte
/// each, with single-bucket passes skipped (free on skewed key ranges). The
/// total order it produces is exactly std::sort's for unsigned keys, so it
/// is drop-in bit-identical; ~4x faster than comparison sorting at the n/p
/// block sizes this app handles, which is where the retuned profile's W
/// savings come from.
void radix_sort_u64(std::vector<std::uint64_t>& v,
                    std::vector<std::uint64_t>& scratch) {
  const std::size_t n = v.size();
  if (n < 64) {
    std::sort(v.begin(), v.end());
    return;
  }
  scratch.resize(n);
  // One read pass builds all eight histograms.
  std::array<std::array<std::size_t, 256>, 8> hist{};
  for (const std::uint64_t k : v) {
    for (int pass = 0; pass < 8; ++pass) {
      hist[static_cast<std::size_t>(pass)][(k >> (8 * pass)) & 0xff]++;
    }
  }
  std::uint64_t* src = v.data();
  std::uint64_t* dst = scratch.data();
  for (int pass = 0; pass < 8; ++pass) {
    const auto& h = hist[static_cast<std::size_t>(pass)];
    bool trivial = false;
    for (const std::size_t c : h) {
      if (c == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;  // every key shares this byte: a stable no-op
    std::array<std::size_t, 256> offs;
    std::size_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offs[static_cast<std::size_t>(b)] = sum;
      sum += h[static_cast<std::size_t>(b)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[offs[(src[i] >> (8 * pass)) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != v.data()) std::memcpy(v.data(), src, n * sizeof(std::uint64_t));
}

void sort_local(std::vector<std::uint64_t>& v,
                SampleSortOptions::LocalSort how,
                std::vector<std::uint64_t>& scratch) {
  if (how == SampleSortOptions::LocalSort::Radix) {
    radix_sort_u64(v, scratch);
  } else {
    std::sort(v.begin(), v.end());
  }
}

/// One sorted run to merge: a borrowed [begin, begin+len) span (inbox view
/// or local buffer).
struct Run {
  const std::uint64_t* begin;
  std::size_t len;
};

/// K-way merges sorted runs into `out` with a hand-rolled binary min-heap of
/// run heads: one pass over the data (log k comparisons per key) instead of
/// the log k full passes of pairwise merging — and since it writes straight
/// into the output span, the per-run copies and the final memcpy of the old
/// tail are gone entirely.
void merge_runs_into(const std::vector<Run>& runs, std::uint64_t* out) {
  struct Cursor {
    const std::uint64_t* cur;
    const std::uint64_t* end;
  };
  std::vector<Cursor> cs;
  cs.reserve(runs.size());
  for (const Run& r : runs) {
    if (r.len != 0) cs.push_back(Cursor{r.begin, r.begin + r.len});
  }
  if (cs.empty()) return;
  if (cs.size() == 1) {
    std::memcpy(out, cs[0].cur,
                static_cast<std::size_t>(cs[0].end - cs[0].cur) *
                    sizeof(std::uint64_t));
    return;
  }
  struct Head {
    std::uint64_t key;
    std::uint32_t run;
  };
  std::vector<Head> heap;
  heap.reserve(cs.size());
  for (std::size_t i = 0; i < cs.size(); ++i) {
    heap.push_back(Head{*cs[i].cur, static_cast<std::uint32_t>(i)});
  }
  const auto sift_down = [&heap](std::size_t i) {
    const std::size_t n = heap.size();
    Head h = heap[i];
    while (true) {
      std::size_t kid = 2 * i + 1;
      if (kid >= n) break;
      if (kid + 1 < n && heap[kid + 1].key < heap[kid].key) ++kid;
      if (heap[kid].key >= h.key) break;
      heap[i] = heap[kid];
      i = kid;
    }
    heap[i] = h;
  };
  for (std::size_t i = heap.size() / 2; i-- > 0;) sift_down(i);
  while (!heap.empty()) {
    const Head top = heap[0];
    *out++ = top.key;
    Cursor& c = cs[top.run];
    ++c.cur;
    if (c.cur != c.end) {
      heap[0] = Head{*c.cur, top.run};  // replace-top: one sift, no pop+push
    } else {
      heap[0] = heap.back();
      heap.pop_back();
    }
    if (!heap.empty()) sift_down(0);
  }
}

/// The split-phase trick: the regular sample at sorted position `pos` can be
/// produced *without sorting* by std::nth_element, whose partition property
/// (everything left of the nth is <=, everything right is >=) also lets the
/// next, larger position be selected from the remaining right part only.
/// For std::uint64_t keys the value at each order statistic is unique as a
/// bit pattern, so the sample array is bit-identical to sampling the sorted
/// run — which is what makes the split and rigid programs comparable.
std::vector<std::uint64_t> regular_samples_unsorted(
    std::vector<std::uint64_t>& local, std::size_t s) {
  std::vector<std::uint64_t> samples;
  if (local.empty()) return samples;
  bool have_prev = false;
  std::size_t prev_pos = 0;
  for (std::size_t k = 0; k < s; ++k) {
    const std::size_t pos = local.size() * k / s;
    if (have_prev && pos == prev_pos) {
      samples.push_back(samples.back());
      continue;
    }
    const auto base =
        local.begin() +
        static_cast<std::ptrdiff_t>(have_prev ? prev_pos + 1 : 0);
    std::nth_element(base, local.begin() + static_cast<std::ptrdiff_t>(pos),
                     local.end());
    samples.push_back(local[pos]);
    prev_pos = pos;
    have_prev = true;
  }
  return samples;
}

std::vector<std::uint64_t> regular_samples_sorted(
    const std::vector<std::uint64_t>& local, std::size_t s) {
  std::vector<std::uint64_t> samples;
  if (local.empty()) return samples;
  samples.reserve(s);
  for (std::size_t k = 0; k < s; ++k) {
    samples.push_back(local[local.size() * k / s]);
  }
  return samples;
}

/// Selects the p-1 splitters from the sorted pool of everyone's samples —
/// the same formula on the same pool on every rank, so one-pass distribution
/// needs no broadcast to agree.
std::vector<std::uint64_t> select_splitters(std::vector<std::uint64_t> all,
                                            int p) {
  std::sort(all.begin(), all.end());
  std::vector<std::uint64_t> splitters;
  if (all.empty()) return splitters;
  splitters.reserve(static_cast<std::size_t>(p) - 1);
  for (int j = 1; j < p; ++j) {
    splitters.push_back(
        all[std::min(all.size() - 1, all.size() * static_cast<std::size_t>(j) /
                                         static_cast<std::size_t>(p))]);
  }
  return splitters;
}

}  // namespace

std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SampleSortOptions options) {
  if (out->size() != input.size()) {
    throw std::invalid_argument("sample_sort: output size mismatch");
  }
  return [&input, out, options](Worker& w) {
    const int p = w.nprocs();
    const std::size_t n = input.size();
    const bool split = options.mode == SyncMode::SplitPhase;
    const std::size_t s =
        options.oversample != 0 ? options.oversample
                                : static_cast<std::size_t>(p);
    std::vector<std::uint64_t> scratch;

    // Blockwise share of the shared input.
    const std::size_t lo = n * static_cast<std::size_t>(w.pid()) /
                           static_cast<std::size_t>(p);
    const std::size_t hi = n * (static_cast<std::size_t>(w.pid()) + 1) /
                           static_cast<std::size_t>(p);
    std::vector<std::uint64_t> local(
        input.begin() + static_cast<std::ptrdiff_t>(lo),
        input.begin() + static_cast<std::ptrdiff_t>(hi));

    if (p == 1) {
      sort_local(local, options.local_sort, scratch);
      std::copy(local.begin(), local.end(), out->begin());
      return;
    }
    if (!split) sort_local(local, options.local_sort, scratch);

    // --- superstep 1 (and 2, for two-pass): splitter agreement ------------
    // One-pass: allgather every rank's samples and select locally — the
    // pool, and therefore the selection, is identical everywhere. Two-pass:
    // gather the pool onto rank 0, select there, broadcast the selection.
    // SplitPhase picks the samples by order statistics first and runs the
    // dominant local sort inside the boundary window while they travel.
    std::vector<std::uint64_t> samples;
    std::vector<std::uint64_t> pool;  // everyone's samples, pid order
    if (split) {
      samples = regular_samples_unsorted(local, s);
      if (options.two_pass_splitters) {
        if (w.pid() != 0) w.send_array(0, samples);
      } else {
        for (int d = 0; d < p; ++d) {
          if (d != w.pid()) w.send_array(d, samples);
        }
      }
      w.sync_begin();
      sort_local(local, options.local_sort, scratch);
      w.sync_end();
      if (options.two_pass_splitters ? w.pid() == 0 : true) {
        // Concatenate in pid order — the same pool one-pass rigid builds.
        std::vector<const Message*> from(static_cast<std::size_t>(p), nullptr);
        while (const Message* m = w.get_message()) from[m->source] = m;
        for (int q = 0; q < p; ++q) {
          if (q == w.pid()) {
            pool.insert(pool.end(), samples.begin(), samples.end());
          } else if (const Message* m = from[static_cast<std::size_t>(q)]) {
            const std::size_t cnt = m->size() / sizeof(std::uint64_t);
            const std::size_t at = pool.size();
            pool.resize(at + cnt);
            if (cnt != 0) std::memcpy(pool.data() + at, m->payload.data(), m->size());
          }
        }
      }
    } else {
      samples = regular_samples_sorted(local, s);
      if (options.two_pass_splitters) {
        pool = gatherv(w, 0, samples);
      } else {
        pool = allgatherv(w, samples);
      }
    }
    std::vector<std::uint64_t> splitters;
    if (options.two_pass_splitters) {
      // Broadcast [count, splitters..., padding] as one fixed-size block so
      // non-roots need no size agreement superstep.
      std::vector<std::uint64_t> pack(static_cast<std::size_t>(p), 0);
      if (w.pid() == 0) {
        splitters = select_splitters(std::move(pool), p);
        pack[0] = splitters.size();
        std::copy(splitters.begin(), splitters.end(), pack.begin() + 1);
      }
      broadcast_span(w, 0, pack);
      if (w.pid() != 0) {
        splitters.assign(pack.begin() + 1,
                         pack.begin() + 1 + static_cast<std::ptrdiff_t>(pack[0]));
      }
    } else {
      splitters = select_splitters(std::move(pool), p);
    }

    // --- superstep 2: personalized all-to-all of buckets ------------------
    // One combined message per destination: the sender's full p-entry key
    // count row rides at the head of its key block, so every receiver
    // reconstructs the whole count matrix and computes the global output
    // offsets — no separate length-allgather superstep.
    std::vector<std::size_t> cut(static_cast<std::size_t>(p) + 1, 0);
    for (int d = 0; d < p; ++d) {
      std::size_t to = local.size();
      if (d < static_cast<int>(splitters.size())) {
        to = static_cast<std::size_t>(
            std::upper_bound(local.begin(), local.end(),
                             splitters[static_cast<std::size_t>(d)]) -
            local.begin());
      }
      cut[static_cast<std::size_t>(d) + 1] = to;
    }
    std::vector<std::uint64_t> row(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      row[static_cast<std::size_t>(d)] =
          cut[static_cast<std::size_t>(d) + 1] - cut[static_cast<std::size_t>(d)];
    }
    const std::size_t row_bytes =
        static_cast<std::size_t>(p) * sizeof(std::uint64_t);
    for (int d = 0; d < p; ++d) {
      if (d == w.pid()) continue;
      const std::size_t cnt = row[static_cast<std::size_t>(d)];
      std::byte* slot =
          w.send_reserve(d, row_bytes + cnt * sizeof(std::uint64_t));
      std::memcpy(slot, row.data(), row_bytes);
      if (cnt != 0) {
        std::memcpy(slot + row_bytes,
                    local.data() + cut[static_cast<std::size_t>(d)],
                    cnt * sizeof(std::uint64_t));
      }
    }
    if (split) {
      w.sync_begin();
      w.sync_end();
    } else {
      w.sync();
    }

    // --- tail: offsets from the piggybacked rows, then merge --------------
    std::vector<std::uint64_t> lens(static_cast<std::size_t>(p), 0);
    for (int q = 0; q < p; ++q) {
      lens[static_cast<std::size_t>(q)] += row[static_cast<std::size_t>(q)];
    }
    std::vector<Run> runs;
    runs.reserve(static_cast<std::size_t>(p));
    const std::size_t self_at = static_cast<std::size_t>(w.pid());
    runs.push_back(Run{local.data() + cut[self_at], row[self_at]});
    while (const Message* m = w.get_message()) {
      if (m->size() < row_bytes ||
          (m->size() - row_bytes) % sizeof(std::uint64_t) != 0) {
        throw std::logic_error("sample_sort: malformed bucket message");
      }
      // The sender's count row accumulates into the global lengths; keys
      // merge straight out of the inbox view (8-byte aligned, row offset
      // keeps it so).
      const std::byte* base = m->payload.data();
      for (int q = 0; q < p; ++q) {
        std::uint64_t c;
        std::memcpy(&c, base + static_cast<std::size_t>(q) * sizeof(c),
                    sizeof(c));
        lens[static_cast<std::size_t>(q)] += c;
      }
      runs.push_back(
          Run{reinterpret_cast<const std::uint64_t*>(base + row_bytes),
              (m->size() - row_bytes) / sizeof(std::uint64_t)});
    }
    std::size_t offset = 0;
    for (int q = 0; q < w.pid(); ++q) {
      offset += static_cast<std::size_t>(lens[static_cast<std::size_t>(q)]);
    }
    merge_runs_into(runs, out->data() + offset);
  };
}

std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SyncMode mode) {
  SampleSortOptions options;
  options.mode = mode;
  return make_sample_sort_program(input, out, options);
}

std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs,
    SampleSortOptions options) {
  std::vector<std::uint64_t> out(input.size(), 0);
  Config cfg;
  cfg.nprocs = nprocs;
  Runtime rt(cfg);
  rt.run(make_sample_sort_program(input, &out, options));
  return out;
}

std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs, SyncMode mode) {
  SampleSortOptions options;
  options.mode = mode;
  return bsp_sample_sort(input, nprocs, options);
}

}  // namespace gbsp
