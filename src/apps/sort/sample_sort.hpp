// BSP parallel sorting by regular sampling (PSRS) — the paper's Section 4
// names sorting (with broadcast) as the canonical "fairly simple
// subroutine" whose BSP cost curve can be fit precisely; this is that
// subroutine, written in the library's own style and tuned per the regimes
// of "BSP Sorting: An experimental Study" (PAPERS.md).
//
// Three-superstep structure (one-pass splitters, p > 1):
//   1. sort locally; allgather `oversample` regular samples per processor;
//      every processor selects the identical p-1 splitters locally
//   2. partition by splitter; one combined message per destination carrying
//      [p x uint64 send-count row][keys] — the piggybacked rows give every
//      receiver the full count matrix, so output offsets need no extra
//      superstep
//   3. k-way merge the incoming sorted runs straight out of the inbox views
//      into the output at the global offset (the tail superstep)
//
// so S is constant, H ~ 2n/p per processor, and W ~ sort(n/p) — the classic
// BSP sorting profile. Two-pass splitter distribution (gather samples to 0,
// select, broadcast — the regime that halves the splitter-selection h at one
// extra L) is available via SampleSortOptions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runtime.hpp"

namespace gbsp {

/// Tuning knobs for the sample-sort regimes ("BSP Sorting: An experimental
/// Study"): how hard to oversample, how to distribute splitters, how to sort
/// locally. Every combination produces the same sorted output bit for bit.
struct SampleSortOptions {
  SyncMode mode = SyncMode::Rigid;

  /// Samples taken per processor. 0 = p, the classic regular-sampling ratio
  /// (guarantees < 2n/p keys per bucket); larger values tighten bucket
  /// balance at the cost of a bigger splitter-selection relation.
  std::size_t oversample = 0;

  /// false (one-pass): allgather the samples and let every processor select
  /// the identical splitters locally — 1 superstep, h = (p-1)*s each way.
  /// true (two-pass): gather samples onto processor 0, select there, and
  /// broadcast p-1 splitters — 2 supersteps, but the gather's fan-in is the
  /// whole relation (the regime that wins when g is small and L is not).
  bool two_pass_splitters = false;

  /// Local sort: LSD radix (exact for uint64 keys, ~4x the throughput of
  /// comparison sorting at the n/p sizes this app runs) or std::sort (the
  /// pre-tune baseline, kept for regime comparison).
  enum class LocalSort { Radix, StdSort };
  LocalSort local_sort = LocalSort::Radix;
};

/// SPMD program sorting the shared input into *out (the caller pre-sizes it
/// to input.size()). Keys are distributed blockwise by index at the start;
/// each processor writes its final run into the output at the correct
/// global offset (the piggybacked count rows make writes disjoint).
///
/// SyncMode::SplitPhase overlaps the dominant local work with the sample
/// exchange: regular samples are picked *before* the local sort with
/// iterative std::nth_element order statistics (bit-identical values to
/// sampling the sorted run, by the partition property), the boundary opens
/// with sync_begin(), and the local sort runs inside the window while the
/// samples travel. Superstep structure and the sorted output are
/// bit-identical to SyncMode::Rigid.
std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SampleSortOptions options);

std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SyncMode mode = SyncMode::Rigid);

/// Convenience wrapper: sort via the BSP program on `nprocs` processors.
std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs,
    SampleSortOptions options);

std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs,
    SyncMode mode = SyncMode::Rigid);

}  // namespace gbsp
