// BSP parallel sorting by regular sampling (PSRS) — the paper's Section 4
// names sorting (with broadcast) as the canonical "fairly simple
// subroutine" whose BSP cost curve can be fit precisely; this is that
// subroutine, written in the library's own style.
//
// Four-superstep structure (for p > 1):
//   1. sort locally; pick p regular samples each; gather samples to 0
//   2. processor 0 selects p-1 splitters; broadcast
//   3. partition locally by splitter; personalized all-to-all of buckets
//   4. merge incoming sorted runs (the tail superstep)
//
// so S is constant, H ~ 2n/p per processor, and W ~ (n/p) log n — the
// classic BSP sorting profile.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runtime.hpp"

namespace gbsp {

/// SPMD program sorting the shared input into *out (the caller pre-sizes it
/// to input.size()). Keys are distributed blockwise by index at the start;
/// each processor writes its final run into the output at the correct
/// global offset (offsets are exchanged, so writes are disjoint).
///
/// SyncMode::SplitPhase overlaps the dominant local work with the sample
/// gather: regular samples are picked *before* the local sort with iterative
/// std::nth_element order statistics (bit-identical values to sampling the
/// sorted run, by the partition property), the boundary opens with
/// sync_begin(), and the O((n/p) log(n/p)) std::sort runs inside the window
/// while the samples travel. Superstep structure, message bytes, and the
/// sorted output are bit-identical to SyncMode::Rigid.
std::function<void(Worker&)> make_sample_sort_program(
    const std::vector<std::uint64_t>& input, std::vector<std::uint64_t>* out,
    SyncMode mode = SyncMode::Rigid);

/// Convenience wrapper: sort via the BSP program on `nprocs` processors.
std::vector<std::uint64_t> bsp_sample_sort(
    const std::vector<std::uint64_t>& input, int nprocs,
    SyncMode mode = SyncMode::Rigid);

}  // namespace gbsp
