// Row-level numeric kernels shared by the sequential and BSP ocean codes.
//
// Discretization: cell-centered on an m x m interior (m = 2^k), cell size
// h = 1/m, centers at (j - 1/2) h. The boundary ring of the (m+2)^2 arrays
// holds ghost cells; the Dirichlet condition psi = 0 on the basin walls is
// imposed by reflection (ghost = -adjacent interior cell, so the linear
// interpolant vanishes at the wall). Cell-centered grids nest exactly under
// coarsening m -> m/2, which is what makes multigrid converge at
// grid-independent rates on the paper's (2^k + 2)-sized grids.
//
// Both implementations call exactly these functions on rows of width m + 2,
// so their arithmetic is bit-identical — the test suite exploits this by
// requiring exact agreement between the parallel and sequential fields.
#pragma once

#include <cmath>

namespace gbsp::ocean_kernels {

/// Compiler barrier keeping amplification scratch work alive (see
/// OceanConfig::work_amplification).
inline void keep(const double* p) {
  asm volatile("" : : "r"(p) : "memory");
}

/// Imposes the wall condition on the two edge columns of an interior row.
inline void reflect_columns(double* row, int m) {
  row[0] = -row[1];
  row[m + 1] = -row[m];
}

/// One red-black Gauss–Seidel update of row `global_row` (interior columns
/// only, cells with (global_row + j) % 2 == color) for Lap(u) = f.
/// Within one color, reads touch only the opposite color, so sweep order —
/// and hence the parallel row decomposition — cannot change the result.
inline void relax_row(double* u, const double* up, const double* dn,
                      const double* f, int m, double h2, int global_row,
                      int color) {
  for (int j = 1 + ((global_row + 1 + color) % 2); j <= m; j += 2) {
    u[j] = 0.25 * (up[j] + dn[j] + u[j - 1] + u[j + 1] - h2 * f[j]);
  }
}

/// Residual row: r = f - Lap(u).
inline void residual_row(double* r, const double* u, const double* up,
                         const double* dn, const double* f, int m,
                         double inv_h2) {
  for (int j = 1; j <= m; ++j) {
    r[j] = f[j] -
           (up[j] + dn[j] + u[j - 1] + u[j + 1] - 4.0 * u[j]) * inv_h2;
  }
  r[0] = 0.0;
  r[m + 1] = 0.0;
}

/// Cell-centered restriction: coarse cell (I, J) is the average of its four
/// fine children; coarse row I comes from fine rows 2I-1 and 2I.
inline void cc_restrict_row(double* coarse, const double* fine0,
                            const double* fine1, int mc) {
  for (int J = 1; J <= mc; ++J) {
    const int j = 2 * J;
    coarse[J] = 0.25 * (fine0[j - 1] + fine0[j] + fine1[j - 1] + fine1[j]);
  }
  coarse[0] = 0.0;
  coarse[mc + 1] = 0.0;
}

/// Cell-centered bilinear prolongation of one fine row (interior size mf):
/// fine[j] += interpolation of the coarse correction. `cnear` is the coarse
/// row containing the fine row's parent, `cfar` the next coarse row toward
/// the fine row's off-center side; `far_scale` is +1 normally and -1 when
/// the far row is the wall reflection of `cnear` itself.
inline void cc_prolong_row(double* fine, const double* cnear,
                           const double* cfar, double far_scale, int mf) {
  const int mc = mf / 2;
  auto cval = [mc](const double* c, int J) {
    if (J < 1) return -c[1];        // column reflection at the left wall
    if (J > mc) return -c[mc];      // and at the right wall
    return c[J];
  };
  for (int j = 1; j <= mf; ++j) {
    int Jn, Jf;
    if (j % 2 == 1) {
      Jn = (j + 1) / 2;
      Jf = Jn - 1;
    } else {
      Jn = j / 2;
      Jf = Jn + 1;
    }
    fine[j] += (9.0 * cval(cnear, Jn) + 3.0 * cval(cnear, Jf) +
                far_scale * (3.0 * cval(cfar, Jn) + cval(cfar, Jf))) /
               16.0;
  }
}

/// Vorticity tendency for one interior row:
///   zeta_new = zeta + dt * (-J(psi, zeta) - beta*psi_x + nu*Lap(zeta) + F)
/// with centered differences; row index i (y = (i-1/2)*h), columns j.
inline void tendency_row(double* zeta_new, const double* psi_up,
                         const double* psi, const double* psi_dn,
                         const double* zeta_up, const double* zeta,
                         const double* zeta_dn, int m, double h, int row,
                         double dt, double nu, double beta, double wind) {
  const double inv2h = 1.0 / (2.0 * h);
  const double inv_h2 = 1.0 / (h * h);
  const double y = (row - 0.5) * h;
  const double forcing = -wind * std::sin(M_PI * y);
  for (int j = 1; j <= m; ++j) {
    const double psi_x = (psi[j + 1] - psi[j - 1]) * inv2h;
    const double psi_y = (psi_dn[j] - psi_up[j]) * inv2h;
    const double zeta_x = (zeta[j + 1] - zeta[j - 1]) * inv2h;
    const double zeta_y = (zeta_dn[j] - zeta_up[j]) * inv2h;
    const double jac = psi_x * zeta_y - psi_y * zeta_x;
    const double lap =
        (zeta_up[j] + zeta_dn[j] + zeta[j - 1] + zeta[j + 1] -
         4.0 * zeta[j]) *
        inv_h2;
    zeta_new[j] =
        zeta[j] + dt * (-jac - beta * psi_x + nu * lap + forcing);
  }
  zeta_new[0] = 0.0;
  zeta_new[m + 1] = 0.0;
}

}  // namespace gbsp::ocean_kernels
