// Row-level numeric kernels shared by the sequential and BSP ocean codes.
//
// Discretization: cell-centered on an m x m interior (m = 2^k), cell size
// h = 1/m, centers at (j - 1/2) h. The boundary ring of the (m+2)^2 arrays
// holds ghost cells; the Dirichlet condition psi = 0 on the basin walls is
// imposed by reflection (ghost = -adjacent interior cell, so the linear
// interpolant vanishes at the wall). Cell-centered grids nest exactly under
// coarsening m -> m/2, which is what makes multigrid converge at
// grid-independent rates on the paper's (2^k + 2)-sized grids.
//
// Both implementations call exactly these functions on rows of width m + 2,
// so their arithmetic is bit-identical — the test suite exploits this by
// requiring exact agreement between the parallel and sequential fields.
//
// SIMD policy (DESIGN.md section 7): the residual, restriction,
// prolongation, and norm rows are vectorized on util/simd.hpp.  Each keeps
// its scalar reference alive in the nested `scalar` namespace, and the
// vector form mirrors the reference expression shape operation for
// operation, lane by lane — IEEE arithmetic is deterministic per lane, so
// the vectorized rows stay byte-identical to the references
// (tests/test_kernels.cpp enforces this).  relax_row is NOT vectorized: its
// red-black update order is the contract behind the seq/BSP exact-agreement
// tests and the stride-2 gather/scatter would cost most of the win anyway.
#pragma once

#include <cmath>

#include "util/simd.hpp"

namespace gbsp::ocean_kernels {

/// Compiler barrier keeping amplification scratch work alive (see
/// OceanConfig::work_amplification).
inline void keep(const double* p) {
  asm volatile("" : : "r"(p) : "memory");
}

/// Imposes the wall condition on the two edge columns of an interior row.
inline void reflect_columns(double* row, int m) {
  row[0] = -row[1];
  row[m + 1] = -row[m];
}

/// One red-black Gauss–Seidel update of row `global_row` (interior columns
/// only, cells with (global_row + j) % 2 == color) for Lap(u) = f.
/// Within one color, reads touch only the opposite color, so sweep order —
/// and hence the parallel row decomposition — cannot change the result.
/// Deliberately scalar; see the SIMD policy note above.
inline void relax_row(double* u, const double* up, const double* dn,
                      const double* f, int m, double h2, int global_row,
                      int color) {
  for (int j = 1 + ((global_row + 1 + color) % 2); j <= m; j += 2) {
    u[j] = 0.25 * (up[j] + dn[j] + u[j - 1] + u[j + 1] - h2 * f[j]);
  }
}

/// Bit-exact scalar references for the vectorized rows below.  These are
/// the seed implementations, retained verbatim: the equivalence tests run
/// the vector kernels against them on every size and alignment.
namespace scalar {

inline void residual_row(double* r, const double* u, const double* up,
                         const double* dn, const double* f, int m,
                         double inv_h2) {
  for (int j = 1; j <= m; ++j) {
    r[j] = f[j] -
           (up[j] + dn[j] + u[j - 1] + u[j + 1] - 4.0 * u[j]) * inv_h2;
  }
  r[0] = 0.0;
  r[m + 1] = 0.0;
}

inline void cc_restrict_row(double* coarse, const double* fine0,
                            const double* fine1, int mc) {
  for (int J = 1; J <= mc; ++J) {
    const int j = 2 * J;
    coarse[J] = 0.25 * (fine0[j - 1] + fine0[j] + fine1[j - 1] + fine1[j]);
  }
  coarse[0] = 0.0;
  coarse[mc + 1] = 0.0;
}

inline void cc_prolong_row(double* fine, const double* cnear,
                           const double* cfar, double far_scale, int mf) {
  const int mc = mf / 2;
  auto cval = [mc](const double* c, int J) {
    if (J < 1) return -c[1];        // column reflection at the left wall
    if (J > mc) return -c[mc];      // and at the right wall
    return c[J];
  };
  for (int j = 1; j <= mf; ++j) {
    int Jn, Jf;
    if (j % 2 == 1) {
      Jn = (j + 1) / 2;
      Jf = Jn - 1;
    } else {
      Jn = j / 2;
      Jf = Jn + 1;
    }
    fine[j] += (9.0 * cval(cnear, Jn) + 3.0 * cval(cnear, Jf) +
                far_scale * (3.0 * cval(cfar, Jn) + cval(cfar, Jf))) /
               16.0;
  }
}

inline double absmax_row(const double* r, int m) {
  double mx = 0.0;
  for (int j = 1; j <= m; ++j) mx = std::max(mx, std::abs(r[j]));
  return mx;
}

}  // namespace scalar

/// Residual row: r = f - Lap(u).  Vectorized; every lane evaluates the
/// same expression tree as scalar::residual_row.  `r` never aliases the
/// input rows at any call site (distinct fields, or the amplification
/// scratch row), which the restrict qualifier passes on to the compiler so
/// it can pipeline across iterations.
inline void residual_row(double* __restrict r, const double* u,
                         const double* up, const double* dn, const double* f,
                         int m, double inv_h2) {
  constexpr int W = simd::kWidth;
  const simd::vd vfour = simd::broadcast(4.0);
  const simd::vd vinv = simd::broadcast(inv_h2);
  auto stencil = [&](int j) {
    const simd::vd vup = simd::load(up + j);
    const simd::vd vdn = simd::load(dn + j);
    const simd::vd vul = simd::load(u + j - 1);
    const simd::vd vur = simd::load(u + j + 1);
    const simd::vd vu = simd::load(u + j);
    const simd::vd vf = simd::load(f + j);
    simd::store(r + j, vf - (vup + vdn + vul + vur - vfour * vu) * vinv);
  };
  int j = 1;
  // Two independent vectors per iteration: the stencil's add chain is
  // latency-bound, and the stores are to disjoint lanes, so unrolling only
  // adds ILP — lane arithmetic is unchanged.
  for (; j + 2 * W <= m + 1; j += 2 * W) {
    stencil(j);
    stencil(j + W);
  }
  for (; j + W <= m + 1; j += W) stencil(j);
  for (; j <= m; ++j) {
    r[j] = f[j] -
           (up[j] + dn[j] + u[j - 1] + u[j + 1] - 4.0 * u[j]) * inv_h2;
  }
  r[0] = 0.0;
  r[m + 1] = 0.0;
}

/// Cell-centered restriction: coarse cell (I, J) is the average of its four
/// fine children; coarse row I comes from fine rows 2I-1 and 2I.
/// Vectorized with an even/odd deinterleave of the fine streams; lane
/// arithmetic mirrors scalar::cc_restrict_row.
inline void cc_restrict_row(double* __restrict coarse, const double* fine0,
                            const double* fine1, int mc) {
  constexpr int W = simd::kWidth;
  const simd::vd vq = simd::broadcast(0.25);
  int J = 1;
  for (; J + W <= mc + 1; J += W) {
    // Fine columns 2J-1 .. 2(J+W-1): stream position 0 is column 2J-1.
    simd::vd o0, e0, o1, e1;
    simd::deinterleave(simd::load(fine0 + 2 * J - 1),
                       simd::load(fine0 + 2 * J - 1 + W), &o0, &e0);
    simd::deinterleave(simd::load(fine1 + 2 * J - 1),
                       simd::load(fine1 + 2 * J - 1 + W), &o1, &e1);
    simd::store(coarse + J, vq * (o0 + e0 + o1 + e1));
  }
  for (; J <= mc; ++J) {
    const int j = 2 * J;
    coarse[J] = 0.25 * (fine0[j - 1] + fine0[j] + fine1[j - 1] + fine1[j]);
  }
  coarse[0] = 0.0;
  coarse[mc + 1] = 0.0;
}

/// Cell-centered bilinear prolongation of one fine row (interior size mf):
/// fine[j] += interpolation of the coarse correction. `cnear` is the coarse
/// row containing the fine row's parent, `cfar` the next coarse row toward
/// the fine row's off-center side; `far_scale` is +1 normally and -1 when
/// the far row is the wall reflection of `cnear` itself.
///
/// The interior (no column-reflection) span is vectorized pairwise — one
/// vector of odd fine columns and one of even per step, interleaved back
/// into the contiguous fine row; the reflecting edge columns use the scalar
/// reference.
inline void cc_prolong_row(double* __restrict fine, const double* cnear,
                           const double* cfar, double far_scale, int mf) {
  // `fine` aliases neither coarse row; cnear and cfar may alias each other
  // (the wall-reflection call), but both are read-only here, so only the
  // store target carries restrict.
  constexpr int W = simd::kWidth;
  const int mc = mf / 2;
  const simd::vd v9 = simd::broadcast(9.0);
  const simd::vd v3 = simd::broadcast(3.0);
  const simd::vd v16 = simd::broadcast(16.0);
  const simd::vd vfs = simd::broadcast(far_scale);
  // Odd fine column 2J-1 reads coarse J and J-1; even column 2J reads J and
  // J+1.  Both stay inside [1, mc] for J in [2, mc-1], so the vector loop
  // covers J = 2 .. Jv (fine columns 3 .. 2*Jv), edges go scalar.
  int Jv_end = 2;  // one past the last vector-covered J
  if (mc - 1 >= 2 + W - 1) {
    for (int J = 2; J + W - 1 <= mc - 1; J += W) {
      const simd::vd cnJ = simd::load(cnear + J);
      const simd::vd cnJm = simd::load(cnear + J - 1);
      const simd::vd cnJp = simd::load(cnear + J + 1);
      const simd::vd cfJ = simd::load(cfar + J);
      const simd::vd cfJm = simd::load(cfar + J - 1);
      const simd::vd cfJp = simd::load(cfar + J + 1);
      // fine[2J-1]: Jn = J, Jf = J-1;  fine[2J]: Jn = J, Jf = J+1.
      const simd::vd vodd =
          (v9 * cnJ + v3 * cnJm + vfs * (v3 * cfJ + cfJm)) / v16;
      const simd::vd veven =
          (v9 * cnJ + v3 * cnJp + vfs * (v3 * cfJ + cfJp)) / v16;
      simd::vd lo, hi;
      simd::interleave(vodd, veven, &lo, &hi);
      double* dst = fine + 2 * J - 1;
      simd::store(dst, simd::load(dst) + lo);
      simd::store(dst + W, simd::load(dst + W) + hi);
      Jv_end = J + W;
    }
  }
  auto cval = [mc](const double* c, int J) {
    if (J < 1) return -c[1];
    if (J > mc) return -c[mc];
    return c[J];
  };
  auto scalar_at = [&](int j) {
    int Jn, Jf;
    if (j % 2 == 1) {
      Jn = (j + 1) / 2;
      Jf = Jn - 1;
    } else {
      Jn = j / 2;
      Jf = Jn + 1;
    }
    fine[j] += (9.0 * cval(cnear, Jn) + 3.0 * cval(cnear, Jf) +
                far_scale * (3.0 * cval(cfar, Jn) + cval(cfar, Jf))) /
               16.0;
  };
  for (int j = 1; j <= std::min(2, mf); ++j) scalar_at(j);
  for (int j = 2 * Jv_end - 1; j <= mf; ++j) scalar_at(j);
}

/// max_{j in 1..m} |r[j]| — the norm/reduction row under the multigrid
/// stopping tests.  max is associative and commutative, so the lane-split
/// reduction returns the same double as scalar::absmax_row.
inline double absmax_row(const double* r, int m) {
  constexpr int W = simd::kWidth;
  simd::vd vmx = simd::zero();
  int j = 1;
  for (; j + W <= m + 1; j += W) {
    vmx = simd::max(vmx, simd::abs(simd::load(r + j)));
  }
  double mx = simd::hmax(vmx);
  for (; j <= m; ++j) mx = std::max(mx, std::abs(r[j]));
  return mx;
}

/// Vorticity tendency for one interior row:
///   zeta_new = zeta + dt * (-J(psi, zeta) - beta*psi_x + nu*Lap(zeta) + F)
/// with centered differences; row index i (y = (i-1/2)*h), columns j.
inline void tendency_row(double* zeta_new, const double* psi_up,
                         const double* psi, const double* psi_dn,
                         const double* zeta_up, const double* zeta,
                         const double* zeta_dn, int m, double h, int row,
                         double dt, double nu, double beta, double wind) {
  const double inv2h = 1.0 / (2.0 * h);
  const double inv_h2 = 1.0 / (h * h);
  const double y = (row - 0.5) * h;
  const double forcing = -wind * std::sin(M_PI * y);
  for (int j = 1; j <= m; ++j) {
    const double psi_x = (psi[j + 1] - psi[j - 1]) * inv2h;
    const double psi_y = (psi_dn[j] - psi_up[j]) * inv2h;
    const double zeta_x = (zeta[j + 1] - zeta[j - 1]) * inv2h;
    const double zeta_y = (zeta_dn[j] - zeta_up[j]) * inv2h;
    const double jac = psi_x * zeta_y - psi_y * zeta_x;
    const double lap =
        (zeta_up[j] + zeta_dn[j] + zeta[j - 1] + zeta[j + 1] -
         4.0 * zeta[j]) *
        inv_h2;
    zeta_new[j] =
        zeta[j] + dt * (-jac - beta * psi_x + nu * lap + forcing);
  }
  zeta_new[0] = 0.0;
  zeta_new[m + 1] = 0.0;
}

}  // namespace gbsp::ocean_kernels
