// Ocean eddy simulation (paper Section 3.1) — configuration and shared
// definitions.
//
// The paper adapted the SPLASH Ocean code: a wind-driven ocean basin solved
// with "a multigrid technique on an underlying grid". We implement the same
// computational structure: a streamfunction–vorticity formulation
//
//     d zeta/dt = -J(psi, zeta) - beta * psi_x + nu * Lap(zeta) + F_wind(y)
//     Lap(psi)  = zeta,     psi = 0 on the basin boundary,
//
// advanced explicitly in time, with the Poisson solve done by multigrid
// V-cycles (red-black Gauss–Seidel relaxation, full-weighting restriction,
// bilinear prolongation) iterated to a residual tolerance. Grids are
// (2^k + 2)^2 including the boundary ring — the paper's sizes 66, 130, 258,
// 514. The BSP decomposition is by contiguous interior-row blocks at every
// multigrid level, with one ghost row exchanged per relaxation color — the
// nearest-neighbour, many-small-superstep pattern that makes Ocean the
// paper's latency-sensitivity stress test.
#pragma once

#include <stdexcept>
#include <vector>

namespace gbsp {

/// How the BSP ocean moves ghost rows between neighbors: Green-style
/// message passing, or Oxford-style DRMA puts into the neighbor's ghost
/// slots (paper Section 1.3 contrasts exactly these two designs, noting the
/// Oxford library "is well suited for many static computations that arise
/// in scientific computing" — of which this is one).
enum class OceanExchange { Message, Drma };

struct OceanConfig {
  int n = 66;          ///< grid size including boundary; interior n-2 = 2^k
  int timesteps = 2;
  double dt = 5e-4;
  double nu = 1e-3;    ///< viscosity
  double beta = 50.0;  ///< Coriolis gradient
  double wind = 1.0;   ///< wind-stress curl amplitude
  int nu_pre = 2;      ///< pre-smoothing sweeps per level
  int nu_post = 2;     ///< post-smoothing sweeps per level
  int coarsest = 4;    ///< stop coarsening at this interior size
  int coarse_sweeps = 10;
  double solve_tol = 1e-3;  ///< relative residual target per solve
  int max_vcycles = 20;

  /// Measurement-resolution amplifier: every relaxation/residual/tendency
  /// row update is recomputed into a scratch buffer this many times (the
  /// real update happens once, so results are unchanged). A 1996-era
  /// processor spent ~1 ms of local computation per ocean superstep; a
  /// modern core spends ~1 us, below the per-superstep measurement floor.
  /// Amplification restores a measurable work-to-overhead ratio; the
  /// constant factor cancels exactly through the per-size emulator
  /// calibration (DESIGN.md section 2).
  int work_amplification = 1;

  /// Ghost-row transport (restriction/prolongation rows always travel as
  /// messages; both transports produce bit-identical fields).
  OceanExchange exchange = OceanExchange::Message;

  [[nodiscard]] int interior() const { return n - 2; }

  void validate() const {
    const int m = interior();
    if (m < 4 || (m & (m - 1)) != 0) {
      throw std::invalid_argument(
          "ocean: n must be 2^k + 2 with interior >= 4");
    }
    if (timesteps < 1 || coarsest < 2 || max_vcycles < 1 ||
        work_amplification < 1) {
      throw std::invalid_argument("ocean: bad iteration parameters");
    }
  }
};

/// Multigrid level sizes for a configuration: interior() , interior()/2, ...
/// down to (and including) the coarsest level.
std::vector<int> ocean_levels(const OceanConfig& cfg);

}  // namespace gbsp
