// BSP ocean simulation: row-block decomposition of every multigrid level,
// ghost-row exchange per relaxation color, distributed restriction /
// prolongation, and allreduce-based convergence tests. Built on the same
// row kernels as OceanSequential, so parallel results match the sequential
// baseline exactly (bit-for-bit), which the tests verify.
#pragma once

#include <functional>
#include <vector>

#include "apps/ocean/ocean.hpp"
#include "core/runtime.hpp"

namespace gbsp {

struct OceanRunInfo {
  int total_vcycles = 0;
  double last_residual = 0.0;  ///< relative residual of the final solve
};

/// SPMD ocean program. `psi_out` / `zeta_out` must be zero-initialized
/// n*n row-major vectors; every processor writes its own interior rows
/// (disjoint). `info` is written by processor 0 (all processors compute
/// identical values).
std::function<void(Worker&)> make_ocean_program(OceanConfig cfg,
                                                std::vector<double>* psi_out,
                                                std::vector<double>* zeta_out,
                                                OceanRunInfo* info);

/// Convenience wrapper for tests/examples.
OceanRunInfo bsp_ocean(const OceanConfig& cfg, int nprocs,
                       std::vector<double>* psi_out,
                       std::vector<double>* zeta_out);

}  // namespace gbsp
