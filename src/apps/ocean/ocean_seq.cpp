#include "apps/ocean/ocean_seq.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/ocean/kernels.hpp"

namespace gbsp {

std::vector<int> ocean_levels(const OceanConfig& cfg) {
  std::vector<int> out;
  for (int m = cfg.interior(); m >= cfg.coarsest; m /= 2) {
    out.push_back(m);
    if (m == cfg.coarsest) break;
  }
  return out;
}

namespace {

/// Wall reflections for a full (m+2)^2 field: ghost rows/columns = -adjacent
/// interior cells, so the bilinear interpolant vanishes on the basin walls.
void reflect_all(std::vector<double>& a, int m) {
  const int w = m + 2;
  double* r0 = a.data();
  double* r1 = a.data() + w;
  double* rm = a.data() + static_cast<std::size_t>(m) * w;
  double* rm1 = a.data() + static_cast<std::size_t>(m + 1) * w;
  for (int j = 0; j < w; ++j) {
    r0[j] = -r1[j];
    rm1[j] = -rm[j];
  }
  for (int i = 1; i <= m; ++i) {
    gbsp::ocean_kernels::reflect_columns(a.data() +
                                             static_cast<std::size_t>(i) * w,
                                         m);
  }
}

}  // namespace

OceanSequential::OceanSequential(OceanConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  for (int m : ocean_levels(cfg_)) {
    Level lv;
    lv.m = m;
    const double h = 1.0 / m;
    lv.h2 = h * h;
    const std::size_t sz = static_cast<std::size_t>(m + 2) * (m + 2);
    lv.u.assign(sz, 0.0);
    lv.f.assign(sz, 0.0);
    lv.r.assign(sz, 0.0);
    levels_.push_back(std::move(lv));
  }
  const std::size_t sz =
      static_cast<std::size_t>(cfg_.n) * static_cast<std::size_t>(cfg_.n);
  psi_.assign(sz, 0.0);
  zeta_.assign(sz, 0.0);
  zeta_tmp_.assign(sz, 0.0);
  scratch_.assign(static_cast<std::size_t>(cfg_.interior()) + 2, 0.0);
}

void OceanSequential::smooth(Level& lv, int sweeps) {
  for (int s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) {
      reflect_all(lv.u, lv.m);
      for (int i = 1; i <= lv.m; ++i) {
        for (int rep = 1; rep < cfg_.work_amplification; ++rep) {
          std::memcpy(scratch_.data(), row(lv.u, lv.m, i),
                      static_cast<std::size_t>(lv.m + 2) * sizeof(double));
          ocean_kernels::relax_row(scratch_.data(), row(lv.u, lv.m, i - 1),
                                   row(lv.u, lv.m, i + 1),
                                   row(lv.f, lv.m, i), lv.m, lv.h2, i, color);
          ocean_kernels::keep(scratch_.data());
        }
        ocean_kernels::relax_row(row(lv.u, lv.m, i), row(lv.u, lv.m, i - 1),
                                 row(lv.u, lv.m, i + 1), row(lv.f, lv.m, i),
                                 lv.m, lv.h2, i, color);
      }
    }
  }
}

void OceanSequential::compute_residual(Level& lv) {
  reflect_all(lv.u, lv.m);
  const double inv_h2 = 1.0 / lv.h2;
  for (int i = 1; i <= lv.m; ++i) {
    for (int rep = 1; rep < cfg_.work_amplification; ++rep) {
      ocean_kernels::residual_row(scratch_.data(), row(lv.u, lv.m, i),
                                  row(lv.u, lv.m, i - 1),
                                  row(lv.u, lv.m, i + 1), row(lv.f, lv.m, i),
                                  lv.m, inv_h2);
      ocean_kernels::keep(scratch_.data());
    }
    ocean_kernels::residual_row(row(lv.r, lv.m, i), row(lv.u, lv.m, i),
                                row(lv.u, lv.m, i - 1), row(lv.u, lv.m, i + 1),
                                row(lv.f, lv.m, i), lv.m, inv_h2);
  }
}

void OceanSequential::restrict_to(const Level& fine, Level& coarse) {
  for (int I = 1; I <= coarse.m; ++I) {
    const int i = 2 * I;
    ocean_kernels::cc_restrict_row(row(coarse.f, coarse.m, I),
                                   row(fine.r, fine.m, i - 1),
                                   row(fine.r, fine.m, i), coarse.m);
  }
  std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
}

void OceanSequential::prolong_from(const Level& coarse, Level& fine) {
  for (int i = 1; i <= fine.m; ++i) {
    const int near = (i % 2 == 1) ? (i + 1) / 2 : i / 2;
    const int far = (i % 2 == 1) ? near - 1 : near + 1;
    const double* cnear = row(coarse.u, coarse.m, near);
    const double* cfar = cnear;
    double scale = -1.0;  // wall reflection of the near row
    if (far >= 1 && far <= coarse.m) {
      cfar = row(coarse.u, coarse.m, far);
      scale = 1.0;
    }
    ocean_kernels::cc_prolong_row(row(fine.u, fine.m, i), cnear, cfar, scale,
                                  fine.m);
  }
}

void OceanSequential::vcycle(std::size_t l) {
  Level& lv = levels_[l];
  if (l + 1 == levels_.size()) {
    smooth(lv, cfg_.coarse_sweeps);
    return;
  }
  smooth(lv, cfg_.nu_pre);
  compute_residual(lv);
  restrict_to(lv, levels_[l + 1]);
  vcycle(l + 1);
  prolong_from(levels_[l + 1], lv);
  smooth(lv, cfg_.nu_post);
}

double OceanSequential::residual_inf(Level& lv) {
  compute_residual(lv);
  double mx = 0.0;
  for (int i = 1; i <= lv.m; ++i) {
    mx = std::max(mx, ocean_kernels::absmax_row(row(lv.r, lv.m, i), lv.m));
  }
  return mx;
}

int OceanSequential::solve(Level& top) {
  double fnorm = 0.0;
  for (int i = 1; i <= top.m; ++i) {
    fnorm =
        std::max(fnorm, ocean_kernels::absmax_row(row(top.f, top.m, i), top.m));
  }
  if (fnorm == 0.0) fnorm = 1.0;
  int cycles = 0;
  while (cycles < cfg_.max_vcycles) {
    vcycle(0);
    ++cycles;
    const double res = residual_inf(top);
    last_residual_ = res / fnorm;
    if (last_residual_ < cfg_.solve_tol) break;
  }
  return cycles;
}

int OceanSequential::solve_poisson(const std::vector<double>& f,
                                   std::vector<double>& u) {
  Level& top = levels_[0];
  top.f = f;
  std::fill(top.u.begin(), top.u.end(), 0.0);
  const int cycles = solve(top);
  u = top.u;
  return cycles;
}

int OceanSequential::step() {
  const int m = cfg_.interior();
  const double h = 1.0 / m;
  reflect_all(psi_, m);
  reflect_all(zeta_, m);
  for (int i = 1; i <= m; ++i) {
    for (int rep = 1; rep < cfg_.work_amplification; ++rep) {
      ocean_kernels::tendency_row(
          scratch_.data(), row(psi_, m, i - 1), row(psi_, m, i),
          row(psi_, m, i + 1), row(zeta_, m, i - 1), row(zeta_, m, i),
          row(zeta_, m, i + 1), m, h, i, cfg_.dt, cfg_.nu, cfg_.beta,
          cfg_.wind);
      ocean_kernels::keep(scratch_.data());
    }
    ocean_kernels::tendency_row(
        row(zeta_tmp_, m, i), row(psi_, m, i - 1), row(psi_, m, i),
        row(psi_, m, i + 1), row(zeta_, m, i - 1), row(zeta_, m, i),
        row(zeta_, m, i + 1), m, h, i, cfg_.dt, cfg_.nu, cfg_.beta,
        cfg_.wind);
  }
  zeta_.swap(zeta_tmp_);

  // Solve Lap(psi) = zeta, warm-started from the previous psi.
  Level& top = levels_[0];
  top.f = zeta_;
  top.u = psi_;
  const int cycles = solve(top);
  psi_ = top.u;
  return cycles;
}

int OceanSequential::run() {
  int total = 0;
  for (int t = 0; t < cfg_.timesteps; ++t) total += step();
  return total;
}

}  // namespace gbsp
