// Sequential ocean simulation — the single-processor baseline, built on the
// same row kernels as the BSP version (kernels.hpp), so the two agree
// exactly.
#pragma once

#include <vector>

#include "apps/ocean/ocean.hpp"

namespace gbsp {

class OceanSequential {
 public:
  explicit OceanSequential(OceanConfig cfg);

  /// Advances one time step (tendency + multigrid solve). Returns the number
  /// of V-cycles the solve used.
  int step();

  /// Runs cfg.timesteps steps; returns total V-cycles.
  int run();

  /// Row-major n x n fields including the boundary ring.
  [[nodiscard]] const std::vector<double>& psi() const { return psi_; }
  [[nodiscard]] const std::vector<double>& zeta() const { return zeta_; }

  /// Relative infinity-norm residual of Lap(psi) = zeta after the last solve.
  [[nodiscard]] double last_residual() const { return last_residual_; }

  /// Solves Lap(u) = f on the configured grid from a zero initial guess
  /// (exposed for multigrid convergence tests). Returns V-cycles used.
  int solve_poisson(const std::vector<double>& f, std::vector<double>& u);

 private:
  struct Level {
    int m = 0;       // interior size
    double h2 = 0;   // grid spacing squared
    std::vector<double> u, f, r;  // (m+2) x (m+2)
  };

  [[nodiscard]] double* row(std::vector<double>& a, int level_m,
                            int i) const {
    return a.data() + static_cast<std::size_t>(i) * (level_m + 2);
  }
  [[nodiscard]] const double* row(const std::vector<double>& a, int level_m,
                                  int i) const {
    return a.data() + static_cast<std::size_t>(i) * (level_m + 2);
  }

  void smooth(Level& lv, int sweeps);
  void compute_residual(Level& lv);
  void restrict_to(const Level& fine, Level& coarse);
  void prolong_from(const Level& coarse, Level& fine);
  void vcycle(std::size_t l);
  [[nodiscard]] double residual_inf(Level& lv);
  int solve(Level& top);

  OceanConfig cfg_;
  std::vector<Level> levels_;
  std::vector<double> psi_, zeta_, zeta_tmp_;
  std::vector<double> scratch_;  // work-amplification target row
  double last_residual_ = 0.0;
};

}  // namespace gbsp
