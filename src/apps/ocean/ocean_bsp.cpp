#include "apps/ocean/ocean_bsp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "apps/ocean/kernels.hpp"
#include "core/collectives.hpp"
#include "core/drma.hpp"

namespace gbsp {

namespace {

double max_op(double a, double b) { return a > b ? a : b; }

/// One multigrid level as seen by one processor: a contiguous block of
/// interior rows [first, last] (empty when first > last) with one ghost row
/// on each side; width m + 2 including the ghost columns.
class PLevel {
 public:
  void init(int m, int nprocs, int pid) {
    m_ = m;
    nprocs_ = nprocs;
    const double h = 1.0 / m;
    h2_ = h * h;
    owner_.assign(static_cast<std::size_t>(m) + 2, -1);
    int my_first = 1, my_last = 0;
    for (int q = 0; q < nprocs; ++q) {
      const int s = 1 + (q * m) / nprocs;
      const int e = 1 + ((q + 1) * m) / nprocs;  // exclusive
      for (int r = s; r < e; ++r) owner_[static_cast<std::size_t>(r)] = q;
      if (q == pid) {
        my_first = s;
        my_last = e - 1;
      }
    }
    first_ = my_first;
    last_ = my_last;
    const int rows = std::max(0, last_ - first_ + 1);
    const std::size_t sz =
        static_cast<std::size_t>(rows + 2) * static_cast<std::size_t>(m + 2);
    u.assign(sz, 0.0);
    f.assign(sz, 0.0);
    r.assign(sz, 0.0);
  }

  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] double h2() const { return h2_; }
  [[nodiscard]] int first() const { return first_; }
  [[nodiscard]] int last() const { return last_; }
  [[nodiscard]] bool has_rows() const { return first_ <= last_; }
  [[nodiscard]] int width() const { return m_ + 2; }
  [[nodiscard]] int owner_of(int row) const {
    return owner_[static_cast<std::size_t>(row)];
  }
  [[nodiscard]] bool mine(int row) const {
    return row >= first_ && row <= last_;
  }
  /// First interior row owned by processor q (the block-partition formula;
  /// DRMA senders use it to compute ghost-slot offsets in the peer's
  /// storage).
  [[nodiscard]] int first_row_of(int q) const {
    return 1 + (q * m_) / nprocs_;
  }

  int seg_u = -1, seg_f = -1, seg_r = -1;  // DRMA segment slots

  /// Pointer to global row `grow` in [first-1, last+1].
  [[nodiscard]] double* row(std::vector<double>& a, int grow) const {
    return a.data() +
           static_cast<std::size_t>(grow - (first_ - 1)) * width();
  }
  [[nodiscard]] const double* row(const std::vector<double>& a,
                                  int grow) const {
    return a.data() +
           static_cast<std::size_t>(grow - (first_ - 1)) * width();
  }

  std::vector<double> u, f, r;

 private:
  int m_ = 0;
  int nprocs_ = 1;
  double h2_ = 0.0;
  int first_ = 1, last_ = 0;
  std::vector<int> owner_;
};

/// Rows travel as [int64 global_row][width doubles].
void send_row(Worker& w, int dest, int grow, const double* data, int width,
              std::vector<std::uint8_t>& buf) {
  buf.resize(sizeof(std::int64_t) +
             static_cast<std::size_t>(width) * sizeof(double));
  const std::int64_t r64 = grow;
  std::memcpy(buf.data(), &r64, sizeof(r64));
  std::memcpy(buf.data() + sizeof(r64), data,
              static_cast<std::size_t>(width) * sizeof(double));
  w.send_bytes(dest, buf.data(), buf.size());
}

std::int64_t parse_row(const Message& m, const double** data) {
  std::int64_t r64 = 0;
  std::memcpy(&r64, m.payload.data(), sizeof(r64));
  *data = reinterpret_cast<const double*>(m.payload.data() + sizeof(r64));
  return r64;
}

/// The per-worker simulation state and operations.
class OceanWorker {
 public:
  OceanWorker(Worker& w, const OceanConfig& cfg) : w_(w), cfg_(cfg) {
    const auto ms = ocean_levels(cfg_);
    levels_.resize(ms.size());
    for (std::size_t l = 0; l < ms.size(); ++l) {
      levels_[l].init(ms[l], w_.nprocs(), w_.pid());
    }
    if (cfg_.exchange == OceanExchange::Drma) {
      drma_ = std::make_unique<Drma>(w_);
      for (auto& L : levels_) {  // collective, same order everywhere
        L.seg_u = drma_->register_segment(L.u.data(),
                                          L.u.size() * sizeof(double));
        L.seg_f = drma_->register_segment(L.f.data(),
                                          L.f.size() * sizeof(double));
        L.seg_r = drma_->register_segment(L.r.data(),
                                          L.r.size() * sizeof(double));
      }
    }
    PLevel& top = levels_[0];
    const int rows = std::max(0, top.last() - top.first() + 1);
    zeta_tmp_.assign(static_cast<std::size_t>(rows + 2) * top.width(), 0.0);
    scratch_.assign(static_cast<std::size_t>(top.width()), 0.0);
  }

  /// Work-amplification repeats of one row update (see
  /// OceanConfig::work_amplification); the real update follows at the call
  /// site, so results are unchanged.
  template <typename Fn>
  void amplify(Fn&& update_into) {
    for (int rep = 1; rep < cfg_.work_amplification; ++rep) {
      update_into(scratch_.data());
      ocean_kernels::keep(scratch_.data());
    }
  }

  /// Neighbor ghost-row exchange for one array of one level (one superstep).
  void exchange(PLevel& L, std::vector<double>& a) {
    if (drma_) {
      exchange_drma(L, a);
      return;
    }
    if (L.has_rows()) {
      if (L.first() > 1) {
        send_row(w_, L.owner_of(L.first() - 1), L.first(),
                 L.row(a, L.first()), L.width(), buf_);
      }
      if (L.last() < L.m()) {
        send_row(w_, L.owner_of(L.last() + 1), L.last(), L.row(a, L.last()),
                 L.width(), buf_);
      }
    }
    w_.sync();
    while (const Message* m = w_.get_message()) {
      const double* data = nullptr;
      const std::int64_t grow = parse_row(*m, &data);
      std::memcpy(L.row(a, static_cast<int>(grow)), data,
                  static_cast<std::size_t>(L.width()) * sizeof(double));
    }
  }

  /// Oxford-style variant: write edge rows directly into the neighbor's
  /// ghost slots with DRMA puts (same superstep count, same values).
  void exchange_drma(PLevel& L, std::vector<double>& a) {
    const int seg = (&a == &L.u)   ? L.seg_u
                    : (&a == &L.f) ? L.seg_f
                                   : L.seg_r;
    const std::size_t row_bytes =
        static_cast<std::size_t>(L.width()) * sizeof(double);
    auto ghost_offset = [&](int dest, int grow) {
      // Row `grow` sits at index grow - (first(dest) - 1) in dest's slab.
      return static_cast<std::size_t>(grow - (L.first_row_of(dest) - 1)) *
             row_bytes;
    };
    if (L.has_rows()) {
      if (L.first() > 1) {
        const int dest = L.owner_of(L.first() - 1);
        drma_->put(dest, L.row(a, L.first()), seg,
                   ghost_offset(dest, L.first()), row_bytes);
      }
      if (L.last() < L.m()) {
        const int dest = L.owner_of(L.last() + 1);
        drma_->put(dest, L.row(a, L.last()), seg,
                   ghost_offset(dest, L.last()), row_bytes);
      }
    }
    drma_->sync_puts_only();
  }

  /// Exchange plus the wall conditions: row reflection at the basin top and
  /// bottom, column reflection of every owned row — mirroring the
  /// sequential reflect_all() (rows first, then columns).
  void exchange_with_walls(PLevel& L, std::vector<double>& a) {
    exchange(L, a);
    if (!L.has_rows()) return;
    if (L.first() == 1) {
      const double* src = L.row(a, 1);
      double* dst = L.row(a, 0);
      for (int j = 0; j < L.width(); ++j) dst[j] = -src[j];
    }
    if (L.last() == L.m()) {
      const double* src = L.row(a, L.m());
      double* dst = L.row(a, L.m() + 1);
      for (int j = 0; j < L.width(); ++j) dst[j] = -src[j];
    }
    for (int i = L.first(); i <= L.last(); ++i) {
      ocean_kernels::reflect_columns(L.row(a, i), L.m());
    }
  }

  void smooth(PLevel& L, int sweeps) {
    for (int s = 0; s < sweeps; ++s) {
      for (int color = 0; color < 2; ++color) {
        exchange_with_walls(L, L.u);
        for (int i = L.first(); i <= L.last(); ++i) {
          amplify([&](double* scratch) {
            std::memcpy(scratch, L.row(L.u, i),
                        static_cast<std::size_t>(L.width()) * sizeof(double));
            ocean_kernels::relax_row(scratch, L.row(L.u, i - 1),
                                     L.row(L.u, i + 1), L.row(L.f, i), L.m(),
                                     L.h2(), i, color);
          });
          ocean_kernels::relax_row(L.row(L.u, i), L.row(L.u, i - 1),
                                   L.row(L.u, i + 1), L.row(L.f, i), L.m(),
                                   L.h2(), i, color);
        }
      }
    }
  }

  void compute_residual(PLevel& L) {
    exchange_with_walls(L, L.u);
    const double inv_h2 = 1.0 / L.h2();
    for (int i = L.first(); i <= L.last(); ++i) {
      amplify([&](double* scratch) {
        ocean_kernels::residual_row(scratch, L.row(L.u, i),
                                    L.row(L.u, i - 1), L.row(L.u, i + 1),
                                    L.row(L.f, i), L.m(), inv_h2);
      });
      ocean_kernels::residual_row(L.row(L.r, i), L.row(L.u, i),
                                  L.row(L.u, i - 1), L.row(L.u, i + 1),
                                  L.row(L.f, i), L.m(), inv_h2);
    }
  }

  void restrict_to(PLevel& fine, PLevel& coarse) {
    compute_residual(fine);
    exchange(fine, fine.r);
    // Coarse row I = average of fine rows 2I-1, 2I; computed by the owner
    // of fine row 2I (the 2I-1 row is local or in the ghost slot), then
    // shipped to the coarse owner.
    std::vector<double> crow(static_cast<std::size_t>(coarse.width()));
    for (int I = 1; I <= coarse.m(); ++I) {
      const int i = 2 * I;
      if (!fine.mine(i)) continue;
      ocean_kernels::cc_restrict_row(crow.data(), fine.row(fine.r, i - 1),
                                     fine.row(fine.r, i), coarse.m());
      if (coarse.owner_of(I) == w_.pid()) {
        std::memcpy(coarse.row(coarse.f, I), crow.data(),
                    crow.size() * sizeof(double));
      } else {
        send_row(w_, coarse.owner_of(I), I, crow.data(), coarse.width(),
                 buf_);
      }
    }
    w_.sync();
    while (const Message* m = w_.get_message()) {
      const double* data = nullptr;
      const std::int64_t I = parse_row(*m, &data);
      std::memcpy(coarse.row(coarse.f, static_cast<int>(I)), data,
                  static_cast<std::size_t>(coarse.width()) * sizeof(double));
    }
    std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
  }

  void prolong_from(PLevel& coarse, PLevel& fine) {
    // Coarse row I participates in interpolating fine rows 2I-2 .. 2I+1.
    for (int I = coarse.first(); I <= coarse.last(); ++I) {
      std::set<int> targets;
      for (int i = 2 * I - 2; i <= 2 * I + 1; ++i) {
        if (i >= 1 && i <= fine.m()) targets.insert(fine.owner_of(i));
      }
      for (int t : targets) {
        if (t != w_.pid()) {
          send_row(w_, t, I, coarse.row(coarse.u, I), coarse.width(), buf_);
        }
      }
    }
    w_.sync();
    // Coarse rows available here: own + received.
    std::vector<std::vector<double>> stash;
    std::vector<std::pair<int, const double*>> have;
    for (int I = coarse.first(); I <= coarse.last(); ++I) {
      have.emplace_back(I, coarse.row(coarse.u, I));
    }
    while (const Message* m = w_.get_message()) {
      const double* data = nullptr;
      const std::int64_t I = parse_row(*m, &data);
      stash.emplace_back(data, data + coarse.width());
      have.emplace_back(static_cast<int>(I), stash.back().data());
    }
    auto find_row = [&](int I) -> const double* {
      for (const auto& [row, ptr] : have) {
        if (row == I) return ptr;
      }
      throw std::logic_error("ocean: missing coarse row for prolongation");
    };
    for (int i = fine.first(); i <= fine.last(); ++i) {
      const int near = (i % 2 == 1) ? (i + 1) / 2 : i / 2;
      const int far = (i % 2 == 1) ? near - 1 : near + 1;
      const double* cnear = find_row(near);
      const double* cfar = cnear;
      double scale = -1.0;  // wall reflection of the near row
      if (far >= 1 && far <= coarse.m()) {
        cfar = find_row(far);
        scale = 1.0;
      }
      ocean_kernels::cc_prolong_row(fine.row(fine.u, i), cnear, cfar, scale,
                                    fine.m());
    }
  }

  void vcycle(std::size_t l) {
    PLevel& L = levels_[l];
    if (l + 1 == levels_.size()) {
      smooth(L, cfg_.coarse_sweeps);
      return;
    }
    smooth(L, cfg_.nu_pre);
    restrict_to(L, levels_[l + 1]);
    vcycle(l + 1);
    prolong_from(levels_[l + 1], L);
    smooth(L, cfg_.nu_post);
  }

  [[nodiscard]] double local_interior_max(const PLevel& L,
                                          const std::vector<double>& a) const {
    double mx = 0.0;
    for (int i = L.first(); i <= L.last(); ++i) {
      mx = std::max(mx, ocean_kernels::absmax_row(L.row(a, i), L.m()));
    }
    return mx;
  }

  /// Multigrid solve on level 0 (u = psi, f = zeta). Returns V-cycles used.
  int solve(double* rel_residual_out) {
    PLevel& top = levels_[0];
    double fnorm = allreduce(w_, local_interior_max(top, top.f), max_op);
    if (fnorm == 0.0) fnorm = 1.0;
    int cycles = 0;
    double rel = 0.0;
    while (cycles < cfg_.max_vcycles) {
      vcycle(0);
      ++cycles;
      compute_residual(top);
      rel = allreduce(w_, local_interior_max(top, top.r), max_op) / fnorm;
      if (rel < cfg_.solve_tol) break;
    }
    *rel_residual_out = rel;
    return cycles;
  }

  void tendency() {
    PLevel& top = levels_[0];
    exchange_with_walls(top, top.u);  // psi ghosts + walls
    exchange_with_walls(top, top.f);  // zeta ghosts + walls
    const double h = 1.0 / top.m();
    for (int i = top.first(); i <= top.last(); ++i) {
      amplify([&](double* scratch) {
        ocean_kernels::tendency_row(
            scratch, top.row(top.u, i - 1), top.row(top.u, i),
            top.row(top.u, i + 1), top.row(top.f, i - 1), top.row(top.f, i),
            top.row(top.f, i + 1), top.m(), h, i, cfg_.dt, cfg_.nu,
            cfg_.beta, cfg_.wind);
      });
      ocean_kernels::tendency_row(
          top.row(zeta_tmp_, i), top.row(top.u, i - 1), top.row(top.u, i),
          top.row(top.u, i + 1), top.row(top.f, i - 1), top.row(top.f, i),
          top.row(top.f, i + 1), top.m(), h, i, cfg_.dt, cfg_.nu, cfg_.beta,
          cfg_.wind);
    }
    // Copy rather than swap: seg_f's DRMA registration pins top.f's buffer.
    std::copy(zeta_tmp_.begin(), zeta_tmp_.end(), top.f.begin());
  }

  void publish(std::vector<double>* psi_out,
               std::vector<double>* zeta_out) const {
    const PLevel& top = levels_[0];
    for (int i = top.first(); i <= top.last(); ++i) {
      std::memcpy(psi_out->data() +
                      static_cast<std::size_t>(i) * top.width(),
                  top.row(top.u, i),
                  static_cast<std::size_t>(top.width()) * sizeof(double));
      std::memcpy(zeta_out->data() +
                      static_cast<std::size_t>(i) * top.width(),
                  top.row(top.f, i),
                  static_cast<std::size_t>(top.width()) * sizeof(double));
    }
  }

 private:
  Worker& w_;
  const OceanConfig& cfg_;
  std::vector<PLevel> levels_;
  std::vector<double> zeta_tmp_;
  std::vector<double> scratch_;  // work-amplification target row
  std::vector<std::uint8_t> buf_;
  std::unique_ptr<Drma> drma_;  // only in OceanExchange::Drma mode
};

}  // namespace

std::function<void(Worker&)> make_ocean_program(OceanConfig cfg,
                                                std::vector<double>* psi_out,
                                                std::vector<double>* zeta_out,
                                                OceanRunInfo* info) {
  cfg.validate();
  const std::size_t want =
      static_cast<std::size_t>(cfg.n) * static_cast<std::size_t>(cfg.n);
  if (psi_out->size() != want || zeta_out->size() != want) {
    throw std::invalid_argument("ocean: output fields must be n*n");
  }
  return [cfg, psi_out, zeta_out, info](Worker& w) {
    OceanWorker sim(w, cfg);
    int total_cycles = 0;
    double rel = 0.0;
    for (int t = 0; t < cfg.timesteps; ++t) {
      sim.tendency();
      total_cycles += sim.solve(&rel);
    }
    sim.publish(psi_out, zeta_out);
    if (w.pid() == 0) {  // identical on every processor; one writer suffices
      info->total_vcycles = total_cycles;
      info->last_residual = rel;
    }
  };
}

OceanRunInfo bsp_ocean(const OceanConfig& cfg, int nprocs,
                       std::vector<double>* psi_out,
                       std::vector<double>* zeta_out) {
  OceanRunInfo info;
  Config rc;
  rc.nprocs = nprocs;
  Runtime rt(rc);
  rt.run(make_ocean_program(cfg, psi_out, zeta_out, &info));
  return info;
}

}  // namespace gbsp
