// Distributed single-source and multiple-source shortest paths
// (paper Sections 3.4 and 3.5).
//
// Each processor keeps a priority queue over its home nodes and runs
// Dijkstra-style relaxations, but — the paper's key redesign — it "ends its
// superstep whenever it has worked on its local piece of the graph for some
// period of time called the work factor, rather than continuing until it has
// absolutely no work left". Improvements to border-node labels are batched
// and sent to the border node's owner at every superstep boundary; the
// algorithm is conservative (messages per processor bounded by its border
// count, one update per improved border node per superstep).
//
// Globally the computation is label-correcting: a home label may improve
// after it was popped, in which case the node is simply re-queued.
// Termination is detected by piggybacking an "active" flag on the (possibly
// empty) per-destination update message each superstep: when every processor
// was quiet in superstep t (empty queues, nothing sent), no update can be in
// flight, and everyone halts after reading the round-t flags.
//
// The multiple-shortest-paths variant (Section 3.5) runs `sources.size()`
// computations simultaneously over the shared read-only graph, with
// per-source distance arrays and queues; the work factor applies per source.
#pragma once

#include <functional>
#include <vector>

#include "core/runtime.hpp"
#include "graph/partition.hpp"

namespace gbsp {

struct SpConfig {
  /// Priority-queue pops per source per superstep before the processor
  /// yields. The paper tuned one value across all platforms ("we chose one
  /// work factor to optimize performance across our platforms"); this
  /// default plays the same role — it puts the superstep counts in the
  /// paper's reported range. The work-factor ablation bench sweeps it.
  int work_factor = 50;
};

/// SPMD program computing shortest-path distances from every node in
/// `sources` simultaneously. `out` must be pre-sized to
/// sources.size() x num_global_nodes; each owner writes the final labels of
/// its home nodes (disjoint writes, no synchronization needed).
/// Run with nprocs == part.nparts.
std::function<void(Worker&)> make_sp_program(
    const GraphPartition& part, std::vector<int> sources, SpConfig cfg,
    std::vector<std::vector<double>>* out);

/// Convenience: single-source distances via the BSP program on `nprocs`
/// processors (builds its own runtime; intended for tests/examples).
std::vector<double> bsp_shortest_paths(const Graph& g,
                                       const std::vector<Point2>& points,
                                       int nprocs, int source,
                                       SpConfig cfg = {});

}  // namespace gbsp
