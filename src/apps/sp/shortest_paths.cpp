#include "apps/sp/shortest_paths.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

#include "graph/heap.hpp"

namespace gbsp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Wire format: one message per (sender, receiver) pair per superstep.
struct WireHeader {
  std::uint32_t active = 0;  // sender had work left or sent updates
  std::uint32_t count = 0;   // number of WireUpdate records following
};

struct WireUpdate {
  std::int32_t node = 0;    // global node id (home node of the receiver)
  std::int32_t source = 0;  // which shortest-path computation
  double dist = 0.0;
};
static_assert(sizeof(WireHeader) == 8);
static_assert(sizeof(WireUpdate) == 16);

}  // namespace

std::function<void(Worker&)> make_sp_program(
    const GraphPartition& part, std::vector<int> sources, SpConfig cfg,
    std::vector<std::vector<double>>* out) {
  if (cfg.work_factor < 1) {
    throw std::invalid_argument("sp: work_factor must be >= 1");
  }
  if (out->size() != sources.size()) {
    throw std::invalid_argument("sp: output not sized to sources");
  }
  return [&part, sources, cfg, out](Worker& w) {
    if (w.nprocs() != part.nparts) {
      throw std::invalid_argument("sp: nprocs != partition parts");
    }
    const GraphPart& gp = part.parts[static_cast<std::size_t>(w.pid())];
    const int p = w.nprocs();
    const int nl = gp.num_local;
    const int K = static_cast<int>(sources.size());

    // dist[k * nl + v]: current label of local node v for source k.
    std::vector<double> dist(static_cast<std::size_t>(K) * nl, kInf);
    std::vector<IndexedMinHeap> heaps;
    heaps.reserve(static_cast<std::size_t>(K));
    for (int k = 0; k < K; ++k) heaps.emplace_back(nl);

    for (int k = 0; k < K; ++k) {
      auto it = gp.global_to_local.find(sources[static_cast<std::size_t>(k)]);
      if (it != gp.global_to_local.end() && gp.is_home(it->second)) {
        dist[static_cast<std::size_t>(k) * nl + it->second] = 0.0;
        heaps[static_cast<std::size_t>(k)].push_or_decrease(it->second, 0.0);
      }
    }

    // Per-superstep border-improvement batches, deduplicated per (k, border).
    std::vector<std::vector<WireUpdate>> outgoing(static_cast<std::size_t>(p));
    std::vector<char> dirty(static_cast<std::size_t>(K) * nl, 0);
    std::vector<std::pair<int, int>> dirty_list;  // (k, border local id)

    for (;;) {
      // --- local phase: up to work_factor pops per source -----------------
      for (int k = 0; k < K; ++k) {
        IndexedMinHeap& heap = heaps[static_cast<std::size_t>(k)];
        double* dk = dist.data() + static_cast<std::size_t>(k) * nl;
        int budget = cfg.work_factor;
        while (budget > 0 && !heap.empty()) {
          const auto [u, du] = heap.pop_min();
          --budget;
          if (du > dk[u]) continue;  // superseded by a remote update
          const auto nbrs = gp.neighbors(u);
          const auto ws = gp.edge_weights(u);
          for (std::size_t e = 0; e < nbrs.size(); ++e) {
            const int v = nbrs[e];
            const double cand = du + ws[e];
            if (cand < dk[v]) {
              dk[v] = cand;
              if (gp.is_home(v)) {
                heap.push_or_decrease(v, cand);
              } else {
                char& d = dirty[static_cast<std::size_t>(k) * nl + v];
                if (!d) {
                  d = 1;
                  dirty_list.emplace_back(k, v);
                }
              }
            }
          }
        }
      }

      // --- assemble per-destination batches --------------------------------
      for (const auto& [k, v] : dirty_list) {
        dirty[static_cast<std::size_t>(k) * nl + v] = 0;
        WireUpdate u;
        u.node = gp.local_to_global[static_cast<std::size_t>(v)];
        u.source = k;
        u.dist = dist[static_cast<std::size_t>(k) * nl + v];
        outgoing[static_cast<std::size_t>(gp.owner(v))].push_back(u);
      }
      dirty_list.clear();

      bool active = false;
      for (const auto& h : heaps) {
        if (!h.empty()) {
          active = true;
          break;
        }
      }
      for (const auto& o : outgoing) {
        if (!o.empty()) active = true;
      }

      // --- exchange (one message per peer, header + updates) --------------
      std::vector<std::uint8_t> buf;
      for (int d = 0; d < p; ++d) {
        if (d == w.pid()) continue;
        auto& ups = outgoing[static_cast<std::size_t>(d)];
        WireHeader h;
        h.active = active ? 1 : 0;
        h.count = static_cast<std::uint32_t>(ups.size());
        buf.resize(sizeof(WireHeader) + ups.size() * sizeof(WireUpdate));
        std::memcpy(buf.data(), &h, sizeof(h));
        if (!ups.empty()) {
          std::memcpy(buf.data() + sizeof(h), ups.data(),
                      ups.size() * sizeof(WireUpdate));
        }
        w.send_bytes(d, buf.data(), buf.size());
        ups.clear();
      }
      w.sync();

      // --- absorb updates, collect termination votes ----------------------
      bool anyone_active = active;
      while (const Message* m = w.get_message()) {
        WireHeader h;
        std::memcpy(&h, m->payload.data(), sizeof(h));
        if (h.active != 0) anyone_active = true;
        const auto* ups = reinterpret_cast<const std::uint8_t*>(
            m->payload.data() + sizeof(h));
        for (std::uint32_t i = 0; i < h.count; ++i) {
          WireUpdate u;
          std::memcpy(&u, ups + static_cast<std::size_t>(i) * sizeof(u),
                      sizeof(u));
          const int local = gp.global_to_local.at(u.node);
          double& cur =
              dist[static_cast<std::size_t>(u.source) * nl + local];
          if (u.dist < cur) {
            cur = u.dist;
            heaps[static_cast<std::size_t>(u.source)].push_or_decrease(
                local, u.dist);
          }
        }
      }
      if (!anyone_active) break;
    }

    // --- publish home labels (disjoint writes across processors) ----------
    for (int k = 0; k < K; ++k) {
      auto& row = (*out)[static_cast<std::size_t>(k)];
      for (int h = 0; h < gp.num_home; ++h) {
        row[static_cast<std::size_t>(
            gp.local_to_global[static_cast<std::size_t>(h)])] =
            dist[static_cast<std::size_t>(k) * nl + h];
      }
    }
  };
}

std::vector<double> bsp_shortest_paths(const Graph& g,
                                       const std::vector<Point2>& points,
                                       int nprocs, int source, SpConfig cfg) {
  const GraphPartition part = partition_by_stripes(g, points, nprocs);
  std::vector<std::vector<double>> out(
      1, std::vector<double>(static_cast<std::size_t>(g.num_nodes()), kInf));
  Config rc;
  rc.nprocs = nprocs;
  Runtime rt(rc);
  rt.run(make_sp_program(part, {source}, cfg, &out));
  return std::move(out[0]);
}

}  // namespace gbsp
