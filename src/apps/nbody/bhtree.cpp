#include "apps/nbody/bhtree.hpp"

#include <algorithm>
#include <cmath>

#include "util/kernels.hpp"

namespace gbsp {

Box3 bounding_box(std::span<const Body> bodies) {
  Box3 box;
  for (const Body& b : bodies) box.expand(b.pos);
  return box;
}

BarnesHutTree::BarnesHutTree(std::span<const PointMass> points,
                             int leaf_capacity)
    : leaf_capacity_(std::max(1, leaf_capacity)),
      points_(points.begin(), points.end()) {
  if (points_.empty()) return;
  Box3 box;
  for (const auto& p : points_) box.expand(p.pos);
  const Vec3 center{(box.lo.x + box.hi.x) / 2, (box.lo.y + box.hi.y) / 2,
                    (box.lo.z + box.hi.z) / 2};
  double half = std::max({box.hi.x - box.lo.x, box.hi.y - box.lo.y,
                          box.hi.z - box.lo.z}) /
                    2.0 +
                1e-12;
  nodes_.reserve(points_.size() / 2 + 16);
  root_ = build(center, half, 0, static_cast<int>(points_.size()), 0);
}

int BarnesHutTree::build(Vec3 center, double half, int begin, int end,
                         int depth) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& n = nodes_.back();
    n.center = center;
    n.half = half;
    n.begin = begin;
    n.end = end;
  }
  // Mass properties.
  Vec3 com;
  double mass = 0;
  for (int i = begin; i < end; ++i) {
    const PointMass& p = points_[static_cast<std::size_t>(i)];
    com += p.pos * p.mass;
    mass += p.mass;
  }
  if (mass > 0) com *= 1.0 / mass;
  nodes_[static_cast<std::size_t>(id)].com = com;
  nodes_[static_cast<std::size_t>(id)].mass = mass;

  // Leaf: few bodies, or cell degenerate (coincident points).
  if (end - begin <= leaf_capacity_ || half < 1e-12 || depth > 64) {
    return id;
  }

  // Partition the range into octants (three stable partitions).
  auto octant_of = [&](const PointMass& p) {
    return (p.pos.x >= center.x ? 1 : 0) | (p.pos.y >= center.y ? 2 : 0) |
           (p.pos.z >= center.z ? 4 : 0);
  };
  std::array<int, 9> start{};
  {
    std::array<int, 8> count{};
    for (int i = begin; i < end; ++i) {
      ++count[static_cast<std::size_t>(
          octant_of(points_[static_cast<std::size_t>(i)]))];
    }
    start[0] = begin;
    for (int o = 0; o < 8; ++o) {
      start[static_cast<std::size_t>(o) + 1] =
          start[static_cast<std::size_t>(o)] +
          count[static_cast<std::size_t>(o)];
    }
    std::vector<PointMass> tmp(points_.begin() + begin, points_.begin() + end);
    std::array<int, 8> cursor{};
    for (int o = 0; o < 8; ++o) {
      cursor[static_cast<std::size_t>(o)] = start[static_cast<std::size_t>(o)];
    }
    for (const PointMass& p : tmp) {
      points_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(octant_of(p))]++)] = p;
    }
  }

  nodes_[static_cast<std::size_t>(id)].leaf = false;
  const double h2 = half / 2;
  for (int o = 0; o < 8; ++o) {
    const int b = start[static_cast<std::size_t>(o)];
    const int e = start[static_cast<std::size_t>(o) + 1];
    if (b == e) continue;
    const Vec3 ccenter{center.x + ((o & 1) ? h2 : -h2),
                       center.y + ((o & 2) ? h2 : -h2),
                       center.z + ((o & 4) ? h2 : -h2)};
    const int child = build(ccenter, h2, b, e, depth + 1);
    nodes_[static_cast<std::size_t>(id)].child[static_cast<std::size_t>(o)] =
        child;
  }
  return id;
}

void BarnesHutTree::accel_rec(int node, const Vec3& p, double theta2,
                              kernels::InteractionSoA& batch) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const Vec3 d = n.com - p;
  const double r2 = d.norm2();
  const double side = 2.0 * n.half;
  if (!n.leaf && side * side < theta2 * r2) {
    // Unopenable cell: its (com, mass) summary joins the batch.
    batch.push_back(n.com.x, n.com.y, n.com.z, n.mass);
    return;
  }
  if (n.leaf) {
    for (int i = n.begin; i < n.end; ++i) {
      const PointMass& b = points_[static_cast<std::size_t>(i)];
      batch.push_back(b.pos.x, b.pos.y, b.pos.z, b.mass);
    }
    return;
  }
  for (int c : n.child) {
    if (c >= 0) accel_rec(c, p, theta2, batch);
  }
}

Vec3 BarnesHutTree::accel_at(const Vec3& p, double theta,
                             double eps) const {
  // The traversal only gathers the interaction set (cell summaries and leaf
  // bodies); all arithmetic happens in one SoA batch through the shared
  // interaction kernel, which also handles the self-interaction skip.
  thread_local kernels::InteractionSoA batch;
  batch.clear();
  if (root_ >= 0) accel_rec(root_, p, theta * theta, batch);
  Vec3 acc;
  kernels::accumulate_accel(batch.x.data(), batch.y.data(), batch.z.data(),
                            batch.m.data(), batch.size(), p.x, p.y, p.z,
                            eps * eps, &acc.x, &acc.y, &acc.z);
  return acc;
}

void BarnesHutTree::essential_rec(int node, const Box3& box, double theta,
                                  std::vector<PointMass>& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.leaf) {
    for (int i = n.begin; i < n.end; ++i) {
      out.push_back(points_[static_cast<std::size_t>(i)]);
    }
    return;
  }
  const double d2 = box.dist2_to(n.com);
  const double side = 2.0 * n.half;
  if (side * side < theta * theta * d2) {
    // Unopenable from anywhere in the box: the summary suffices.
    out.push_back({n.com, n.mass});
    return;
  }
  for (int c : n.child) {
    if (c >= 0) essential_rec(c, box, theta, out);
  }
}

void BarnesHutTree::extract_essential(const Box3& target_box, double theta,
                                      std::vector<PointMass>& out) const {
  if (root_ >= 0 && target_box.valid()) {
    essential_rec(root_, target_box, theta, out);
  }
}

double BarnesHutTree::total_mass() const {
  return root_ >= 0 ? nodes_[static_cast<std::size_t>(root_)].mass : 0.0;
}

std::vector<Vec3> bh_accels(const std::vector<Body>& bodies, double theta,
                            double eps, int leaf_capacity) {
  std::vector<PointMass> pts;
  pts.reserve(bodies.size());
  for (const Body& b : bodies) pts.push_back({b.pos, b.mass});
  BarnesHutTree tree(pts, leaf_capacity);
  std::vector<Vec3> acc(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    acc[i] = tree.accel_at(bodies[i].pos, theta, eps);
  }
  return acc;
}

std::vector<Vec3> direct_accels(const std::vector<Body>& bodies, double eps) {
  // O(n^2) over the SoA interaction kernel.  Self-pairs contribute zero
  // (d = 0 under softening; masked lane when eps == 0), so no i == j skip
  // is needed.  Distinct coincident bodies with eps == 0 are likewise
  // masked where the scalar loop produced NaN.
  const double eps2 = eps * eps;
  kernels::InteractionSoA src;
  src.reserve(bodies.size());
  for (const Body& b : bodies) {
    src.push_back(b.pos.x, b.pos.y, b.pos.z, b.mass);
  }
  std::vector<Vec3> acc(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    kernels::accumulate_accel(src.x.data(), src.y.data(), src.z.data(),
                              src.m.data(), src.size(), bodies[i].pos.x,
                              bodies[i].pos.y, bodies[i].pos.z, eps2,
                              &acc[i].x, &acc[i].y, &acc[i].z);
  }
  return acc;
}

}  // namespace gbsp
