// Orthogonal recursive bisection (ORB) over bodies — the paper's
// partitioning scheme for the N-body application ("we use the ORB
// partitioning scheme to partition the bodies among the processors",
// Section 3.2, after Warren & Salmon and Liu & Bhatt).
//
// Splits recursively along the widest axis of the current point set; when a
// subtree is responsible for p processors, the left side receives
// floor(p/2)/p of the bodies (so any processor count works, not just powers
// of two).
#pragma once

#include <vector>

#include "apps/nbody/body.hpp"

namespace gbsp {

/// Returns body index -> processor, balanced within +-1 body per processor
/// per bisection level.
std::vector<int> orb_assign(const std::vector<Body>& bodies, int nprocs);

/// Convenience: per-processor body counts implied by an assignment.
std::vector<int> assignment_counts(const std::vector<int>& assign, int nprocs);

}  // namespace gbsp
