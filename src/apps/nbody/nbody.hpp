// The N-body application (paper Section 3.2): Barnes–Hut with ORB
// partitioning and essential-tree exchange.
//
// Parallel structure per time step (the paper reports six supersteps per
// iteration; ours folds the same exchanges into two — one superstep carrying
// load statistics plus domain boxes, one carrying essential trees — with
// force computation and integration in the trailing slice, and two more
// supersteps on the rare iterations that rebalance):
//
//   1. allgather per-processor load (measured force-phase seconds) and body
//      counts; every processor deterministically decides whether to
//      rebalance ("instead of repartitioning the bodies after each
//      iteration, we only do so if the load imbalance reaches a certain
//      threshold", after Liu & Bhatt);
//   2. [rebalance only] bodies stream to processor 0, which recomputes the
//      ORB assignment and streams them back (two supersteps);
//   3. allgather local bounding boxes (the ORB domains);
//   4. build the local Barnes–Hut tree, extract one essential set per
//      remote domain, exchange;
//   5. rebuild the tree over local bodies + received essentials — "a local
//      BH tree that contains all the data needed" — evaluate accelerations,
//      and integrate (symplectic Euler).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/nbody/bhtree.hpp"
#include "apps/nbody/body.hpp"
#include "core/runtime.hpp"

namespace gbsp {

/// Force engine for the local (essential-augmented) body set.
enum class ForceMethod {
  BarnesHut,  ///< theta-opening tree traversal (the paper's Section 3.2)
  Fmm,        ///< Fast Multipole Method (the paper's Section 5 future work)
};

struct NbodyConfig {
  double theta = 0.7;   ///< Barnes-Hut opening angle
  double eps = 0.05;    ///< Plummer softening
  double dt = 0.0125;   ///< time step
  int iterations = 1;   ///< time steps to run
  int leaf_capacity = 8;
  /// Rebalance when max/mean measured force time exceeds this.
  double imbalance_threshold = 1.4;
  ForceMethod force = ForceMethod::BarnesHut;
};

/// Sequential Barnes–Hut baseline: advances `bodies` by cfg.iterations steps.
void sequential_nbody_steps(std::vector<Body>& bodies,
                            const NbodyConfig& cfg);

/// SPMD program. `initial` and `assign` (body -> processor, e.g. from
/// orb_assign) are shared read-only; each processor writes the final state
/// of the bodies it owns into (*out)[global_index] (disjoint writes).
/// `out` must be pre-sized to initial.size().
std::function<void(Worker&)> make_nbody_program(
    const std::vector<Body>& initial, const std::vector<int>& assign,
    NbodyConfig cfg, std::vector<Body>* out);

/// Convenience wrapper: ORB-partition, run on `nprocs`, return final bodies.
std::vector<Body> bsp_nbody(const std::vector<Body>& initial, int nprocs,
                            NbodyConfig cfg);

}  // namespace gbsp
