#include "apps/nbody/plummer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace gbsp {

namespace {

// Uniform direction on the unit sphere.
Vec3 random_direction(Xoshiro256& rng) {
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * M_PI);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

}  // namespace

std::vector<Body> plummer_model(int n, std::uint64_t seed) {
  if (n < 1) throw std::invalid_argument("plummer_model: n must be >= 1");
  Xoshiro256 rng(seed);
  std::vector<Body> bodies(static_cast<std::size_t>(n));
  const double mass = 1.0 / n;
  // Virial scaling to standard units (Hénon): E = -1/4.
  const double rsc = 3.0 * M_PI / 16.0;
  const double vsc = std::sqrt(1.0 / rsc);

  for (auto& b : bodies) {
    b.mass = mass;
    // Radius from the cumulative mass profile, cut at 99.9% mass to avoid
    // far outliers (as the SPLASH generator does).
    const double u = rng.uniform(0.0, 0.999);
    const double r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    b.pos = random_direction(rng) * (r * rsc);
    // Velocity magnitude by von Neumann rejection on q^2 (1-q^2)^{7/2}.
    double q, y;
    do {
      q = rng.uniform();
      y = rng.uniform(0.0, 0.1);
    } while (y > q * q * std::pow(1.0 - q * q, 3.5));
    const double vesc = std::sqrt(2.0) * std::pow(1.0 + r * r, -0.25);
    b.vel = random_direction(rng) * (q * vesc * vsc);
  }

  // Shift to the center-of-mass frame.
  Vec3 cpos, cvel;
  for (const auto& b : bodies) {
    cpos += b.pos * b.mass;
    cvel += b.vel * b.mass;
  }
  for (auto& b : bodies) {
    b.pos -= cpos;
    b.vel -= cvel;
  }
  return bodies;
}

double total_energy(const std::vector<Body>& bodies, double eps) {
  double kinetic = 0.0, potential = 0.0;
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    kinetic += 0.5 * bodies[i].mass * bodies[i].vel.norm2();
    for (std::size_t j = i + 1; j < bodies.size(); ++j) {
      const double r2 = (bodies[i].pos - bodies[j].pos).norm2();
      potential -= bodies[i].mass * bodies[j].mass / std::sqrt(r2 + eps2);
    }
  }
  return kinetic + potential;
}

}  // namespace gbsp
