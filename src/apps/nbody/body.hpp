// Body and bounding-box types shared across the N-body modules.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "apps/nbody/vec3.hpp"

namespace gbsp {

struct Body {
  Vec3 pos;
  Vec3 vel;
  double mass = 0.0;
};

/// A point mass: what essential-tree exchange ships (a body, or the
/// center-of-mass summary of an unopened remote cell).
struct PointMass {
  Vec3 pos;
  double mass = 0.0;
};

/// Axis-aligned box.
struct Box3 {
  Vec3 lo{+std::numeric_limits<double>::infinity(),
          +std::numeric_limits<double>::infinity(),
          +std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  [[nodiscard]] bool valid() const { return lo.x <= hi.x; }

  /// Squared distance from the box to a point (0 if inside).
  [[nodiscard]] double dist2_to(const Vec3& p) const {
    auto axis = [](double v, double lo, double hi) {
      if (v < lo) return lo - v;
      if (v > hi) return v - hi;
      return 0.0;
    };
    const double dx = axis(p.x, lo.x, hi.x);
    const double dy = axis(p.y, lo.y, hi.y);
    const double dz = axis(p.z, lo.z, hi.z);
    return dx * dx + dy * dy + dz * dz;
  }
};

/// Bounding box of a set of bodies.
Box3 bounding_box(std::span<const Body> bodies);

}  // namespace gbsp
