#include "apps/nbody/fmm.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace gbsp {

namespace {

thread_local FmmStats tl_stats;

// ---------------------------------------------------------------- tensors
//
// Full (non-compressed) symmetric tensors: rank 2 as double[9], rank 3 as
// double[27], rank 4 as double[81], indexed [a*3+b], [(a*3+b)*3+c], ... .
// Naive full storage keeps every contraction a transparent loop.

struct Multipole {
  double M = 0.0;
  double D[3] = {0, 0, 0};
  double Q[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};

  void add(const Multipole& o) {
    M += o.M;
    for (int a = 0; a < 3; ++a) D[a] += o.D[a];
    for (int k = 0; k < 9; ++k) Q[k] += o.Q[k];
  }
};

struct LocalExp {
  double L0 = 0.0;
  double L1[3] = {0, 0, 0};
  double L2[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  double L3[27] = {};
};

/// Derivative tensors of K(R) = 1/|R| up to fourth order.
struct KernelDerivs {
  double k1[3];
  double k2[9];
  double k3[27];
  double k4[81];
};

void kernel_derivs(const Vec3& R, KernelDerivs* kd) {
  const double x[3] = {R.x, R.y, R.z};
  const double r2 = R.norm2();
  const double r = std::sqrt(r2);
  const double ir = 1.0 / r;
  const double ir3 = ir / r2;
  const double ir5 = ir3 / r2;
  const double ir7 = ir5 / r2;
  const double ir9 = ir7 / r2;
  auto delta = [](int a, int b) { return a == b ? 1.0 : 0.0; };
  for (int a = 0; a < 3; ++a) {
    kd->k1[a] = -x[a] * ir3;
    for (int b = 0; b < 3; ++b) {
      kd->k2[a * 3 + b] = 3.0 * x[a] * x[b] * ir5 - delta(a, b) * ir3;
      for (int c = 0; c < 3; ++c) {
        kd->k3[(a * 3 + b) * 3 + c] =
            -15.0 * x[a] * x[b] * x[c] * ir7 +
            3.0 *
                (delta(a, b) * x[c] + delta(a, c) * x[b] +
                 delta(b, c) * x[a]) *
                ir5;
        for (int d = 0; d < 3; ++d) {
          kd->k4[((a * 3 + b) * 3 + c) * 3 + d] =
              105.0 * x[a] * x[b] * x[c] * x[d] * ir9 -
              15.0 *
                  (delta(a, b) * x[c] * x[d] + delta(a, c) * x[b] * x[d] +
                   delta(a, d) * x[b] * x[c] + delta(b, c) * x[a] * x[d] +
                   delta(b, d) * x[a] * x[c] + delta(c, d) * x[a] * x[b]) *
                  ir7 +
              3.0 *
                  (delta(a, b) * delta(c, d) + delta(a, c) * delta(b, d) +
                   delta(a, d) * delta(b, c)) *
                  ir5;
        }
      }
    }
  }
}

/// Adds the field of multipole `src` at separation R = z_target - z_source
/// into the target's local expansion.
void m2l(const Multipole& src, const Vec3& R, LocalExp* dst) {
  KernelDerivs kd;
  kernel_derivs(R, &kd);
  const double K = 1.0 / R.norm();

  double l0 = src.M * K;
  for (int a = 0; a < 3; ++a) l0 -= src.D[a] * kd.k1[a];
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      l0 += 0.5 * src.Q[a * 3 + b] * kd.k2[a * 3 + b];
    }
  }
  dst->L0 += l0;

  for (int a = 0; a < 3; ++a) {
    double l1 = src.M * kd.k1[a];
    for (int b = 0; b < 3; ++b) {
      l1 -= src.D[b] * kd.k2[a * 3 + b];
      for (int c = 0; c < 3; ++c) {
        l1 += 0.5 * src.Q[b * 3 + c] * kd.k3[(a * 3 + b) * 3 + c];
      }
    }
    dst->L1[a] += l1;
  }

  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double l2 = src.M * kd.k2[a * 3 + b];
      for (int c = 0; c < 3; ++c) {
        l2 -= src.D[c] * kd.k3[(a * 3 + b) * 3 + c];
        for (int d = 0; d < 3; ++d) {
          l2 += 0.5 * src.Q[c * 3 + d] * kd.k4[((a * 3 + b) * 3 + c) * 3 + d];
        }
      }
      dst->L2[a * 3 + b] += l2;
    }
  }

  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        double l3 = src.M * kd.k3[(a * 3 + b) * 3 + c];
        for (int d = 0; d < 3; ++d) {
          l3 -= src.D[d] * kd.k4[((a * 3 + b) * 3 + c) * 3 + d];
        }
        dst->L3[(a * 3 + b) * 3 + c] += l3;
      }
    }
  }
}

/// Shifts a parent local expansion to a child center (t = child - parent)
/// and adds it into the child's expansion.
void l2l(const LocalExp& parent, const Vec3& tvec, LocalExp* child) {
  const double t[3] = {tvec.x, tvec.y, tvec.z};
  double l0 = parent.L0;
  for (int a = 0; a < 3; ++a) {
    l0 += parent.L1[a] * t[a];
    for (int b = 0; b < 3; ++b) {
      l0 += 0.5 * parent.L2[a * 3 + b] * t[a] * t[b];
      for (int c = 0; c < 3; ++c) {
        l0 += parent.L3[(a * 3 + b) * 3 + c] * t[a] * t[b] * t[c] / 6.0;
      }
    }
  }
  child->L0 += l0;
  for (int a = 0; a < 3; ++a) {
    double l1 = parent.L1[a];
    for (int b = 0; b < 3; ++b) {
      l1 += parent.L2[a * 3 + b] * t[b];
      for (int c = 0; c < 3; ++c) {
        l1 += 0.5 * parent.L3[(a * 3 + b) * 3 + c] * t[b] * t[c];
      }
    }
    child->L1[a] += l1;
  }
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double l2 = parent.L2[a * 3 + b];
      for (int c = 0; c < 3; ++c) {
        l2 += parent.L3[(a * 3 + b) * 3 + c] * t[c];
      }
      child->L2[a * 3 + b] += l2;
    }
  }
  for (int k = 0; k < 27; ++k) child->L3[k] += parent.L3[k];
}

/// Gradient of the local expansion at offset t from the cell center.
Vec3 l2p(const LocalExp& le, const Vec3& tvec) {
  const double t[3] = {tvec.x, tvec.y, tvec.z};
  double acc[3];
  for (int a = 0; a < 3; ++a) {
    double v = le.L1[a];
    for (int b = 0; b < 3; ++b) {
      v += le.L2[a * 3 + b] * t[b];
      for (int c = 0; c < 3; ++c) {
        v += 0.5 * le.L3[(a * 3 + b) * 3 + c] * t[b] * t[c];
      }
    }
    acc[a] = v;
  }
  return {acc[0], acc[1], acc[2]};
}

// ------------------------------------------------------------------- tree

/// Packed per-level cell coordinates: 10 bits per axis.
std::uint32_t pack(int ix, int iy, int iz) {
  return static_cast<std::uint32_t>(ix) |
         (static_cast<std::uint32_t>(iy) << 10) |
         (static_cast<std::uint32_t>(iz) << 20);
}
void unpack(std::uint32_t key, int* ix, int* iy, int* iz) {
  *ix = static_cast<int>(key & 0x3ff);
  *iy = static_cast<int>((key >> 10) & 0x3ff);
  *iz = static_cast<int>((key >> 20) & 0x3ff);
}

struct Cell {
  std::uint32_t key = 0;
  Multipole mp;
  LocalExp le;
  std::vector<int> points;  // leaves only
};

struct Level {
  std::unordered_map<std::uint32_t, int> index;  // key -> cell id
  std::vector<Cell> cells;
};

class FmmTree {
 public:
  FmmTree(std::span<const PointMass> points, const FmmConfig& cfg)
      : points_(points), cfg_(cfg) {
    // Bounding cube.
    Box3 box;
    for (const auto& p : points_) box.expand(p.pos);
    center_ = {(box.lo.x + box.hi.x) / 2, (box.lo.y + box.hi.y) / 2,
               (box.lo.z + box.hi.z) / 2};
    half_ = std::max({box.hi.x - box.lo.x, box.hi.y - box.lo.y,
                      box.hi.z - box.lo.z}) /
                2.0 +
            1e-12;
    // Depth by occupancy: deepen until the fullest leaf holds at most
    // leaf_target points (this, plus hashed empty-cell skipping, is what
    // keeps clustered distributions like the Plummer core O(n)-ish — the
    // "adaptive" in the paper's adaptive FMM).
    int depth = 3;
    for (; depth < cfg_.max_level; ++depth) {
      std::unordered_map<std::uint32_t, int> occupancy;
      int fullest = 0;
      for (const auto& p : points_) {
        fullest = std::max(fullest, ++occupancy[key_of(p.pos, depth)]);
      }
      if (fullest <= cfg_.leaf_target) break;
    }
    depth_ = depth;
    levels_.resize(static_cast<std::size_t>(depth_) + 1);

    // Leaves.
    Level& leaf_level = levels_[static_cast<std::size_t>(depth_)];
    for (int i = 0; i < static_cast<int>(points_.size()); ++i) {
      const std::uint32_t key = key_of(points_[static_cast<std::size_t>(i)].pos, depth_);
      Cell& c = cell_at(leaf_level, key);
      c.points.push_back(i);
    }
    // Ancestors.
    for (int l = depth_; l > 0; --l) {
      Level& fine = levels_[static_cast<std::size_t>(l)];
      Level& coarse = levels_[static_cast<std::size_t>(l - 1)];
      for (const Cell& c : fine.cells) {
        int ix, iy, iz;
        unpack(c.key, &ix, &iy, &iz);
        cell_at(coarse, pack(ix / 2, iy / 2, iz / 2));
      }
    }
    tl_stats = FmmStats{};
    tl_stats.levels = static_cast<std::size_t>(depth_) + 1;
    for (const auto& lv : levels_) tl_stats.cells += lv.cells.size();
  }

  std::vector<Vec3> solve() {
    upward();
    interactions();
    downward();
    return evaluate();
  }

 private:
  static Cell& cell_at(Level& lv, std::uint32_t key) {
    auto [it, fresh] = lv.index.emplace(key, static_cast<int>(lv.cells.size()));
    if (fresh) {
      lv.cells.emplace_back();
      lv.cells.back().key = key;
    }
    return lv.cells[static_cast<std::size_t>(it->second)];
  }

  [[nodiscard]] std::uint32_t key_of(const Vec3& p, int level) const {
    const int cells = 1 << level;
    const double scale = cells / (2.0 * half_);
    auto clampi = [cells](int v) { return std::clamp(v, 0, cells - 1); };
    const int ix = clampi(static_cast<int>((p.x - (center_.x - half_)) * scale));
    const int iy = clampi(static_cast<int>((p.y - (center_.y - half_)) * scale));
    const int iz = clampi(static_cast<int>((p.z - (center_.z - half_)) * scale));
    return pack(ix, iy, iz);
  }

  [[nodiscard]] Vec3 cell_center(std::uint32_t key, int level) const {
    int ix, iy, iz;
    unpack(key, &ix, &iy, &iz);
    const double w = 2.0 * half_ / (1 << level);
    return {center_.x - half_ + (ix + 0.5) * w,
            center_.y - half_ + (iy + 0.5) * w,
            center_.z - half_ + (iz + 0.5) * w};
  }

  void upward() {
    // P2M at the leaves.
    Level& leaves = levels_[static_cast<std::size_t>(depth_)];
    for (Cell& c : leaves.cells) {
      const Vec3 z = cell_center(c.key, depth_);
      for (int i : c.points) {
        const PointMass& p = points_[static_cast<std::size_t>(i)];
        const Vec3 d = p.pos - z;
        const double dd[3] = {d.x, d.y, d.z};
        c.mp.M += p.mass;
        for (int a = 0; a < 3; ++a) {
          c.mp.D[a] += p.mass * dd[a];
          for (int b = 0; b < 3; ++b) {
            c.mp.Q[a * 3 + b] += p.mass * dd[a] * dd[b];
          }
        }
      }
    }
    // M2M upward.
    for (int l = depth_; l > 0; --l) {
      Level& fine = levels_[static_cast<std::size_t>(l)];
      Level& coarse = levels_[static_cast<std::size_t>(l - 1)];
      for (const Cell& c : fine.cells) {
        int ix, iy, iz;
        unpack(c.key, &ix, &iy, &iz);
        const std::uint32_t pkey = pack(ix / 2, iy / 2, iz / 2);
        Cell& parent = coarse.cells[static_cast<std::size_t>(
            coarse.index.at(pkey))];
        const Vec3 d =
            cell_center(c.key, l) - cell_center(pkey, l - 1);
        const double dd[3] = {d.x, d.y, d.z};
        parent.mp.M += c.mp.M;
        for (int a = 0; a < 3; ++a) {
          parent.mp.D[a] += c.mp.D[a] + c.mp.M * dd[a];
          for (int b = 0; b < 3; ++b) {
            parent.mp.Q[a * 3 + b] += c.mp.Q[a * 3 + b] +
                                      c.mp.D[a] * dd[b] + dd[a] * c.mp.D[b] +
                                      c.mp.M * dd[a] * dd[b];
          }
        }
      }
    }
  }

  void interactions() {
    // Well-separated-by-2 M2L list: cells u with Chebyshev distance > 2
    // whose parents are within Chebyshev distance 2 of c's parent. Pairs
    // farther apart were already handled at a coarser level; closer pairs
    // are deferred to finer levels (and ultimately leaf P2P).
    constexpr int kWs = 2;
    for (int l = 2; l <= depth_; ++l) {
      Level& lv = levels_[static_cast<std::size_t>(l)];
      Level& plv = levels_[static_cast<std::size_t>(l - 1)];
      const int cells = 1 << l;
      const int pcells = 1 << (l - 1);
      for (Cell& c : lv.cells) {
        int ix, iy, iz;
        unpack(c.key, &ix, &iy, &iz);
        const int px = ix / 2, py = iy / 2, pz = iz / 2;
        const Vec3 zc = cell_center(c.key, l);
        for (int nx = std::max(0, px - kWs);
             nx <= std::min(pcells - 1, px + kWs); ++nx) {
          for (int ny = std::max(0, py - kWs);
               ny <= std::min(pcells - 1, py + kWs); ++ny) {
            for (int nz = std::max(0, pz - kWs);
                 nz <= std::min(pcells - 1, pz + kWs); ++nz) {
              if (plv.index.find(pack(nx, ny, nz)) == plv.index.end()) {
                continue;
              }
              for (int o = 0; o < 8; ++o) {
                const int ux = 2 * nx + (o & 1);
                const int uy = 2 * ny + ((o >> 1) & 1);
                const int uz = 2 * nz + ((o >> 2) & 1);
                if (ux >= cells || uy >= cells || uz >= cells) continue;
                if (std::abs(ux - ix) <= kWs && std::abs(uy - iy) <= kWs &&
                    std::abs(uz - iz) <= kWs) {
                  continue;  // near field: finer levels / leaf P2P
                }
                const auto it = lv.index.find(pack(ux, uy, uz));
                if (it == lv.index.end()) continue;
                const Cell& u =
                    lv.cells[static_cast<std::size_t>(it->second)];
                if (u.mp.M == 0.0) continue;
                m2l(u.mp, zc - cell_center(u.key, l), &c.le);
                ++tl_stats.m2l_pairs;
              }
            }
          }
        }
      }
    }
  }

  void downward() {
    for (int l = 2; l < depth_; ++l) {
      Level& lv = levels_[static_cast<std::size_t>(l)];
      Level& flv = levels_[static_cast<std::size_t>(l + 1)];
      for (Cell& child : flv.cells) {
        int ix, iy, iz;
        unpack(child.key, &ix, &iy, &iz);
        const std::uint32_t pkey = pack(ix / 2, iy / 2, iz / 2);
        const Cell& parent =
            lv.cells[static_cast<std::size_t>(lv.index.at(pkey))];
        l2l(parent.le,
            cell_center(child.key, l + 1) - cell_center(pkey, l),
            &child.le);
      }
    }
  }

  [[nodiscard]] std::vector<Vec3> evaluate() {
    std::vector<Vec3> acc(points_.size());
    Level& leaves = levels_[static_cast<std::size_t>(depth_)];
    const int cells = 1 << depth_;
    const double eps2 = cfg_.eps * cfg_.eps;
    for (const Cell& c : leaves.cells) {
      const Vec3 z = cell_center(c.key, depth_);
      int ix, iy, iz;
      unpack(c.key, &ix, &iy, &iz);
      // Gather the near-field source list (Chebyshev distance <= 2,
      // matching the M2L separation rule) once per leaf.
      constexpr int kWs = 2;
      near_.clear();
      for (int nx = std::max(0, ix - kWs); nx <= std::min(cells - 1, ix + kWs);
           ++nx) {
        for (int ny = std::max(0, iy - kWs);
             ny <= std::min(cells - 1, iy + kWs); ++ny) {
          for (int nz = std::max(0, iz - kWs);
               nz <= std::min(cells - 1, iz + kWs); ++nz) {
            const auto it = leaves.index.find(pack(nx, ny, nz));
            if (it == leaves.index.end()) continue;
            const Cell& u =
                leaves.cells[static_cast<std::size_t>(it->second)];
            near_.insert(near_.end(), u.points.begin(), u.points.end());
          }
        }
      }
      for (int i : c.points) {
        const Vec3& y = points_[static_cast<std::size_t>(i)].pos;
        Vec3 a = l2p(c.le, y - z);
        for (int j : near_) {
          if (j == i) continue;
          const Vec3 d = points_[static_cast<std::size_t>(j)].pos - y;
          const double r2 = d.norm2();
          if (r2 == 0.0) continue;
          const double denom = r2 + eps2;
          const double inv = 1.0 / (denom * std::sqrt(denom));
          a += d * (points_[static_cast<std::size_t>(j)].mass * inv);
          ++tl_stats.p2p_pairs;
        }
        acc[static_cast<std::size_t>(i)] = a;
      }
    }
    return acc;
  }

  std::span<const PointMass> points_;
  FmmConfig cfg_;
  Vec3 center_;
  double half_ = 0.0;
  int depth_ = 2;
  std::vector<Level> levels_;
  std::vector<int> near_;
};

}  // namespace

std::vector<Vec3> fmm_accels(std::span<const PointMass> points,
                             const FmmConfig& cfg) {
  if (points.empty()) return {};
  FmmTree tree(points, cfg);
  return tree.solve();
}

FmmStats fmm_last_stats() { return tl_stats; }

}  // namespace gbsp
