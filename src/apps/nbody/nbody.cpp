#include "apps/nbody/nbody.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "apps/nbody/fmm.hpp"
#include "apps/nbody/orb.hpp"
#include "core/collectives.hpp"
#include "util/timer.hpp"

namespace gbsp {

namespace {

// Wire format for migrating bodies (rebalance) and publishing results.
struct WireBody {
  Vec3 pos;
  Vec3 vel;
  double mass = 0.0;
  std::int64_t gid = 0;
};
static_assert(sizeof(WireBody) == 64);

// Per-iteration statistics exchanged in the load allgather.
struct LoadInfo {
  Box3 box;
  std::int64_t count = 0;
  double load_s = 0.0;
};

void integrate(std::vector<WireBody>& bodies, const std::vector<Vec3>& acc,
               double dt) {
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    bodies[i].vel += acc[i] * dt;
    bodies[i].pos += bodies[i].vel * dt;
  }
}

}  // namespace

namespace {

/// Accelerations of all `points` under the configured force engine
/// (local bodies first, remote essentials appended).
std::vector<Vec3> engine_accels(const std::vector<PointMass>& points,
                                const NbodyConfig& cfg) {
  if (cfg.force == ForceMethod::Fmm) {
    FmmConfig fc;
    fc.eps = cfg.eps;
    return fmm_accels(points, fc);
  }
  BarnesHutTree tree(points, cfg.leaf_capacity);
  std::vector<Vec3> acc(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    acc[i] = tree.accel_at(points[i].pos, cfg.theta, cfg.eps);
  }
  return acc;
}

}  // namespace

void sequential_nbody_steps(std::vector<Body>& bodies,
                            const NbodyConfig& cfg) {
  for (int it = 0; it < cfg.iterations; ++it) {
    std::vector<PointMass> pts;
    pts.reserve(bodies.size());
    for (const Body& b : bodies) pts.push_back({b.pos, b.mass});
    const std::vector<Vec3> acc = engine_accels(pts, cfg);
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      bodies[i].vel += acc[i] * cfg.dt;
      bodies[i].pos += bodies[i].vel * cfg.dt;
    }
  }
}

std::function<void(Worker&)> make_nbody_program(
    const std::vector<Body>& initial, const std::vector<int>& assign,
    NbodyConfig cfg, std::vector<Body>* out) {
  if (assign.size() != initial.size()) {
    throw std::invalid_argument("nbody: assignment size mismatch");
  }
  if (out->size() != initial.size()) {
    throw std::invalid_argument("nbody: output size mismatch");
  }
  return [&initial, &assign, cfg, out](Worker& w) {
    const int p = w.nprocs();

    // Pick up this processor's bodies from the shared initial state.
    std::vector<WireBody> mine;
    for (std::size_t i = 0; i < initial.size(); ++i) {
      if (assign[i] == w.pid()) {
        const Body& b = initial[i];
        mine.push_back({b.pos, b.vel, b.mass,
                        static_cast<std::int64_t>(i)});
      }
    }

    double last_load_s = 0.0;

    for (int iter = 0; iter < cfg.iterations; ++iter) {
      // --- (1) load statistics + rebalance decision ----------------------
      Box3 my_box;
      for (const auto& b : mine) my_box.expand(b.pos);
      LoadInfo info{my_box, static_cast<std::int64_t>(mine.size()),
                    last_load_s};
      std::vector<LoadInfo> all = allgather(w, info);

      double max_load = 0.0, sum_load = 0.0;
      for (const auto& li : all) {
        max_load = std::max(max_load, li.load_s);
        sum_load += li.load_s;
      }
      const double mean_load = sum_load / p;
      const bool rebalance =
          iter > 0 && p > 1 && mean_load > 1e-6 &&
          max_load / mean_load > cfg.imbalance_threshold;

      // --- (2) optional ORB repartition via processor 0 -------------------
      if (rebalance) {
        if (w.pid() != 0 && !mine.empty()) {
          w.send_array(0, mine);
        }
        w.sync();
        if (w.pid() == 0) {
          std::vector<WireBody> everything = std::move(mine);
          mine.clear();
          while (const Message* m = w.get_message()) {
            std::vector<WireBody> batch;
            m->copy_array(batch);
            everything.insert(everything.end(), batch.begin(), batch.end());
          }
          std::vector<Body> as_bodies(everything.size());
          for (std::size_t i = 0; i < everything.size(); ++i) {
            as_bodies[i] = {everything[i].pos, everything[i].vel,
                            everything[i].mass};
          }
          const std::vector<int> fresh = orb_assign(as_bodies, p);
          std::vector<std::vector<WireBody>> buckets(
              static_cast<std::size_t>(p));
          for (std::size_t i = 0; i < everything.size(); ++i) {
            buckets[static_cast<std::size_t>(fresh[i])].push_back(
                everything[i]);
          }
          mine = std::move(buckets[0]);
          for (int d = 1; d < p; ++d) {
            w.send_array(d, buckets[static_cast<std::size_t>(d)]);
          }
        }
        w.sync();
        if (w.pid() != 0) {
          mine.clear();
          while (const Message* m = w.get_message()) {
            m->copy_array(mine);
          }
        }
        // Boxes changed; recompute and re-share.
        my_box = Box3{};
        for (const auto& b : mine) my_box.expand(b.pos);
        info = LoadInfo{my_box, static_cast<std::int64_t>(mine.size()), 0.0};
        all = allgather(w, info);
      }

      // --- (3/4) local tree, essential extraction, exchange ---------------
      std::vector<PointMass> local_points;
      local_points.reserve(mine.size());
      for (const auto& b : mine) local_points.push_back({b.pos, b.mass});
      {
        BarnesHutTree local_tree(local_points, cfg.leaf_capacity);
        std::vector<PointMass> essential;
        for (int d = 0; d < p; ++d) {
          if (d == w.pid()) continue;
          essential.clear();
          if (all[static_cast<std::size_t>(d)].count > 0 &&
              all[static_cast<std::size_t>(d)].box.valid()) {
            local_tree.extract_essential(
                all[static_cast<std::size_t>(d)].box, cfg.theta, essential);
          }
          w.send_array(d, essential);
        }
      }
      w.sync();

      // --- (5) merged tree, forces, integration ---------------------------
      ThreadCpuTimer load_timer;
      std::vector<PointMass> merged = std::move(local_points);
      while (const Message* m = w.get_message()) {
        const std::size_t k = m->count_of(sizeof(PointMass));
        const std::size_t base = merged.size();
        merged.resize(base + k);
        if (k != 0) {
          std::memcpy(merged.data() + base, m->payload.data(),
                      k * sizeof(PointMass));
        }
      }
      std::vector<Vec3> acc;
      if (cfg.force == ForceMethod::Fmm) {
        // FMM over the locally essential set; our bodies are the first
        // mine.size() entries of `merged`, which is all integrate() reads.
        FmmConfig fc;
        fc.eps = cfg.eps;
        acc = fmm_accels(merged, fc);
      } else {
        BarnesHutTree tree(merged, cfg.leaf_capacity);
        acc.resize(mine.size());
        for (std::size_t i = 0; i < mine.size(); ++i) {
          acc[i] = tree.accel_at(mine[i].pos, cfg.theta, cfg.eps);
        }
      }
      integrate(mine, acc, cfg.dt);
      last_load_s = load_timer.elapsed_s();
    }

    // Publish final state (disjoint global indices).
    for (const auto& b : mine) {
      (*out)[static_cast<std::size_t>(b.gid)] = Body{b.pos, b.vel, b.mass};
    }
  };
}

std::vector<Body> bsp_nbody(const std::vector<Body>& initial, int nprocs,
                            NbodyConfig cfg) {
  const std::vector<int> assign = orb_assign(initial, nprocs);
  std::vector<Body> out(initial.size());
  Config rc;
  rc.nprocs = nprocs;
  Runtime rt(rc);
  rt.run(make_nbody_program(initial, assign, cfg, &out));
  return out;
}

}  // namespace gbsp
