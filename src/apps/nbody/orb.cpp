#include "apps/nbody/orb.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gbsp {

namespace {

void orb_rec(const std::vector<Body>& bodies, std::vector<int>& idx,
             int begin, int end, int proc_base, int nprocs,
             std::vector<int>& assign) {
  if (nprocs == 1) {
    for (int i = begin; i < end; ++i) {
      assign[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] =
          proc_base;
    }
    return;
  }
  // Widest axis of the current set.
  Box3 box;
  for (int i = begin; i < end; ++i) {
    box.expand(bodies[static_cast<std::size_t>(
                          idx[static_cast<std::size_t>(i)])].pos);
  }
  const double wx = box.hi.x - box.lo.x;
  const double wy = box.hi.y - box.lo.y;
  const double wz = box.hi.z - box.lo.z;
  int axis = 0;
  if (wy >= wx && wy >= wz) axis = 1;
  if (wz >= wx && wz >= wy) axis = 2;

  auto coord = [&](int body) {
    const Vec3& p = bodies[static_cast<std::size_t>(body)].pos;
    return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
  };

  const int pleft = nprocs / 2;
  const int count = end - begin;
  const int nleft = static_cast<int>(
      (static_cast<std::int64_t>(count) * pleft) / nprocs);
  std::nth_element(idx.begin() + begin, idx.begin() + begin + nleft,
                   idx.begin() + end, [&](int a, int b) {
                     const double ca = coord(a), cb = coord(b);
                     return ca != cb ? ca < cb : a < b;
                   });
  orb_rec(bodies, idx, begin, begin + nleft, proc_base, pleft, assign);
  orb_rec(bodies, idx, begin + nleft, end, proc_base + pleft,
          nprocs - pleft, assign);
}

}  // namespace

std::vector<int> orb_assign(const std::vector<Body>& bodies, int nprocs) {
  if (nprocs < 1) throw std::invalid_argument("orb_assign: nprocs >= 1");
  std::vector<int> assign(bodies.size(), 0);
  if (nprocs == 1 || bodies.empty()) return assign;
  std::vector<int> idx(bodies.size());
  std::iota(idx.begin(), idx.end(), 0);
  orb_rec(bodies, idx, 0, static_cast<int>(bodies.size()), 0, nprocs, assign);
  return assign;
}

std::vector<int> assignment_counts(const std::vector<int>& assign,
                                   int nprocs) {
  std::vector<int> counts(static_cast<std::size_t>(nprocs), 0);
  for (int a : assign) ++counts[static_cast<std::size_t>(a)];
  return counts;
}

}  // namespace gbsp
