// Fast Multipole Method — the paper's stated next application ("we are
// currently working on the implementation of some additional application
// programs, including the adaptive Fast Multipole Method", Section 5).
//
// Cartesian-tensor FMM for the 1/r kernel on a hashed octree:
//   P2M/M2M  multipoles to quadrupole order (M, D_i, Q_ij) about cell
//            centers;
//   M2L      multipole-to-local conversion with kernel derivative tensors
//            up to fourth order, producing cubic local expansions
//            (L0, L1_i, L2_ij, L3_ijk);
//   L2L/L2P  downward translation and gradient evaluation;
//   P2P      direct sum (with Plummer softening) over the 27-cell leaf
//            neighborhood.
// The interaction list is the classic uniform-grid one: children of the
// parent's neighbors that are not adjacent to the cell. Empty cells are
// skipped via per-level hash maps, which is what makes the method behave
// adaptively on clustered (Plummer) distributions.
//
// In the BSP N-body application the FMM acts as a drop-in replacement for
// the Barnes–Hut traversal on the locally essential body set
// (NbodyConfig::force), leaving the superstep structure untouched.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/nbody/body.hpp"

namespace gbsp {

struct FmmConfig {
  /// Maximum points per leaf; the tree deepens (up to max_level) until the
  /// fullest leaf fits, which adapts the depth to clustered distributions.
  int leaf_target = 8;
  /// Hard cap on the octree depth (hash keys pack 10 bits per axis).
  int max_level = 9;
  /// Plummer softening applied in the near field (P2P) only; the far field
  /// is genuine 1/r, so eps should be small relative to the leaf width.
  double eps = 0.0;
};

/// Accelerations at every point due to all others (self-interaction
/// excluded), G = 1. Equivalent to direct_accels(..., eps) up to the
/// truncation error of the expansions (~1e-3 relative at default order).
std::vector<Vec3> fmm_accels(std::span<const PointMass> points,
                             const FmmConfig& cfg = {});

/// Diagnostic counters from the last fmm_accels call on this thread
/// (benches report the work decomposition).
struct FmmStats {
  std::size_t levels = 0;
  std::size_t cells = 0;
  std::size_t m2l_pairs = 0;
  std::size_t p2p_pairs = 0;
};
FmmStats fmm_last_stats();

}  // namespace gbsp
