// Barnes–Hut octree (paper Section 3.2; Barnes & Hut 1986).
//
// The tree is built over point masses; internal cells carry total mass and
// center of mass. Force evaluation uses the standard opening criterion
// s/d < theta (s = cell side, d = distance to the cell's center of mass)
// with Plummer softening.
//
// `extract_essential` implements the sender side of the essential-tree
// exchange: for a remote processor's domain box it walks the tree, emitting
// a cell's (com, mass) summary when the cell can never be opened from
// anywhere inside the box (conservative: distance measured from the box, so
// the receiver's force evaluation is at least as accurate as a sequential
// Barnes–Hut traversal), and recursing otherwise; leaf bodies are emitted
// verbatim. The receiver grafts the summaries by rebuilding its tree over
// local bodies + received point masses — "a local BH tree that contains all
// the data needed to compute the forces on its bodies".
#pragma once

#include <array>
#include <span>
#include <vector>

#include "apps/nbody/body.hpp"

namespace gbsp {

namespace kernels {
struct InteractionSoA;
}  // namespace kernels

class BarnesHutTree {
 public:
  /// Builds over the given point masses. `leaf_capacity` bodies per leaf.
  explicit BarnesHutTree(std::span<const PointMass> points,
                         int leaf_capacity = 8);

  /// Gravitational acceleration at `p` (G = 1, Plummer softening `eps`).
  /// A point mass exactly at `p` is skipped (self-interaction).
  [[nodiscard]] Vec3 accel_at(const Vec3& p, double theta, double eps) const;

  /// Appends to `out` the minimal set of point masses that lets any target
  /// inside `target_box` evaluate forces with accuracy >= theta-BH.
  void extract_essential(const Box3& target_box, double theta,
                         std::vector<PointMass>& out) const;

  [[nodiscard]] std::size_t num_cells() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_points() const { return points_.size(); }
  [[nodiscard]] double total_mass() const;

 private:
  struct Node {
    Vec3 center;       // geometric cell center
    double half = 0;   // half side length
    Vec3 com;          // center of mass
    double mass = 0;
    int begin = 0, end = 0;  // point range (leaves)
    std::array<int, 8> child{-1, -1, -1, -1, -1, -1, -1, -1};
    bool leaf = true;
  };

  int build(Vec3 center, double half, int begin, int end, int depth);
  void accel_rec(int node, const Vec3& p, double theta2,
                 kernels::InteractionSoA& batch) const;
  void essential_rec(int node, const Box3& box, double theta,
                     std::vector<PointMass>& out) const;

  int leaf_capacity_;
  std::vector<PointMass> points_;  // reordered copy
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Accelerations on each body from all others, via the tree.
std::vector<Vec3> bh_accels(const std::vector<Body>& bodies, double theta,
                            double eps, int leaf_capacity = 8);

/// O(n^2) direct-sum oracle.
std::vector<Vec3> direct_accels(const std::vector<Body>& bodies, double eps);

}  // namespace gbsp
