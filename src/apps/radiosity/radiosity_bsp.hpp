// BSP-parallel hierarchical radiosity: patches are distributed round-robin;
// link refinement is replicated (it is deterministic, so every processor
// builds the identical element forest and keeps only the links whose
// receivers it owns); each gather/push-pull sweep is one superstep that
// ends with an exchange of the owned elements' radiosities plus a
// piggybacked convergence vote.
//
// The parallel solution is bit-identical to HierarchicalRadiosity::solve():
// sweeps are Jacobi-style (all gathers read the previous sweep's
// radiosities), so distribution cannot change the arithmetic.
#pragma once

#include <functional>
#include <vector>

#include "apps/radiosity/radiosity.hpp"
#include "core/runtime.hpp"

namespace gbsp {

struct RadiosityRunInfo {
  int sweeps = 0;
  double final_delta = 0.0;
};

/// SPMD program. `patch_B_out` must be pre-sized to scene.patches.size();
/// each owner writes its patches' area-averaged radiosities. `info` is
/// written by processor 0.
std::function<void(Worker&)> make_radiosity_program(
    const Scene& scene, RadiosityConfig cfg, std::vector<double>* patch_B_out,
    RadiosityRunInfo* info);

/// Convenience wrapper: run on `nprocs`, return per-patch radiosities.
std::vector<double> bsp_radiosity(const Scene& scene, RadiosityConfig cfg,
                                  int nprocs, RadiosityRunInfo* info = nullptr);

}  // namespace gbsp
