// Scene geometry for the radiosity application (paper Section 5: "a
// hierarchical algorithm for the radiosity problem in computer graphics",
// after Hanrahan, Salzman & Aupperle).
//
// Scenes are collections of rectangular patches (origin + two orthogonal
// edge vectors), each with a scalar (monochrome) emission and diffuse
// reflectance. Visibility between points is resolved by ray/rectangle
// intersection against every patch.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/nbody/vec3.hpp"

namespace gbsp {

/// One rectangular diffuse patch: points origin + s*edge_u + t*edge_v for
/// s, t in [0, 1]. The normal is edge_u x edge_v, normalized; light leaves
/// on the normal side.
struct Patch {
  Vec3 origin;
  Vec3 edge_u;
  Vec3 edge_v;
  double emission = 0.0;     ///< emitted radiosity [power/area]
  double reflectance = 0.0;  ///< diffuse albedo in [0, 1)

  [[nodiscard]] Vec3 normal() const;  ///< unit normal
  [[nodiscard]] double area() const;
  [[nodiscard]] Vec3 point_at(double s, double t) const {
    return origin + edge_u * s + edge_v * t;
  }
  [[nodiscard]] Vec3 center() const { return point_at(0.5, 0.5); }
};

struct Scene {
  std::vector<Patch> patches;

  /// True when the open segment between a and b is blocked by any patch
  /// (patches `skip_a` / `skip_b` are excluded — the endpoints' own
  /// surfaces).
  [[nodiscard]] bool occluded(const Vec3& a, const Vec3& b, int skip_a,
                              int skip_b) const;

  [[nodiscard]] double total_emitted_power() const;
};

/// Ray/rectangle intersection: returns the ray parameter in (tmin, tmax),
/// or a negative value when there is no hit.
double intersect_rectangle(const Patch& p, const Vec3& from, const Vec3& dir,
                           double tmin, double tmax);

/// The interior of an axis-aligned box with inward-facing walls (a closed
/// environment: every wall sees only the other walls). `emission` and
/// `reflectance` apply to all six walls — the "white furnace" whose exact
/// solution is B = E / (1 - rho).
Scene make_furnace_box(double size, double emission, double reflectance);

/// A Cornell-box-like scene: white walls, one emissive ceiling panel, and a
/// free-standing occluder slab between the light and part of the floor.
Scene make_cornell_scene();

/// Two unit squares facing each other at distance d (the classic analytic
/// form-factor configuration).
Scene make_parallel_squares(double d, double emission_top,
                            double reflectance);

}  // namespace gbsp
