#include "apps/radiosity/scene.hpp"

#include <cmath>

namespace gbsp {

namespace {

Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

}  // namespace

Vec3 Patch::normal() const {
  Vec3 n = cross(edge_u, edge_v);
  const double len = n.norm();
  return len > 0 ? n * (1.0 / len) : Vec3{0, 0, 1};
}

double Patch::area() const { return cross(edge_u, edge_v).norm(); }

double intersect_rectangle(const Patch& p, const Vec3& from, const Vec3& dir,
                           double tmin, double tmax) {
  const Vec3 n = cross(p.edge_u, p.edge_v);  // unnormalized
  const double denom = dot(n, dir);
  if (std::abs(denom) < 1e-14) return -1.0;
  const double t = dot(n, p.origin - from) / denom;
  if (t <= tmin || t >= tmax) return -1.0;
  const Vec3 hit = from + dir * t - p.origin;
  // Decompose into (s, u) patch coordinates; edges are orthogonal.
  const double uu = dot(p.edge_u, p.edge_u);
  const double vv = dot(p.edge_v, p.edge_v);
  if (uu <= 0 || vv <= 0) return -1.0;
  const double s = dot(hit, p.edge_u) / uu;
  const double u = dot(hit, p.edge_v) / vv;
  if (s < 0.0 || s > 1.0 || u < 0.0 || u > 1.0) return -1.0;
  return t;
}

bool Scene::occluded(const Vec3& a, const Vec3& b, int skip_a,
                     int skip_b) const {
  const Vec3 dir = b - a;
  for (int i = 0; i < static_cast<int>(patches.size()); ++i) {
    if (i == skip_a || i == skip_b) continue;
    if (intersect_rectangle(patches[static_cast<std::size_t>(i)], a, dir,
                            1e-9, 1.0 - 1e-9) > 0) {
      return true;
    }
  }
  return false;
}

double Scene::total_emitted_power() const {
  double power = 0.0;
  for (const auto& p : patches) power += p.emission * p.area();
  return power;
}

Scene make_furnace_box(double size, double emission, double reflectance) {
  const double s = size;
  Scene scene;
  // Inward-facing walls of [0,s]^3 (normal = edge_u x edge_v points inside).
  // floor z=0, normal +z
  scene.patches.push_back({{0, 0, 0}, {s, 0, 0}, {0, s, 0}, emission,
                           reflectance});
  // ceiling z=s, normal -z
  scene.patches.push_back({{0, 0, s}, {0, s, 0}, {s, 0, 0}, emission,
                           reflectance});
  // wall y=0, normal +y
  scene.patches.push_back({{0, 0, 0}, {0, 0, s}, {s, 0, 0}, emission,
                           reflectance});
  // wall y=s, normal -y
  scene.patches.push_back({{0, s, 0}, {s, 0, 0}, {0, 0, s}, emission,
                           reflectance});
  // wall x=0, normal +x
  scene.patches.push_back({{0, 0, 0}, {0, s, 0}, {0, 0, s}, emission,
                           reflectance});
  // wall x=s, normal -x
  scene.patches.push_back({{s, 0, 0}, {0, 0, s}, {0, s, 0}, emission,
                           reflectance});
  return scene;
}

Scene make_cornell_scene() {
  Scene scene = make_furnace_box(1.0, 0.0, 0.7);
  // Emissive panel just below the ceiling, facing down.
  scene.patches.push_back({{0.35, 0.35, 0.999},
                           {0, 0.3, 0},
                           {0.3, 0, 0},
                           15.0,
                           0.0});
  // A free-standing horizontal slab between light and floor, shading the
  // center of the floor; lit from above, dark below.
  scene.patches.push_back({{0.3, 0.3, 0.5},
                           {0.4, 0, 0},
                           {0, 0.4, 0},
                           0.0,
                           0.6});  // top side (normal +z)
  scene.patches.push_back({{0.3, 0.3, 0.5},
                           {0, 0.4, 0},
                           {0.4, 0, 0},
                           0.0,
                           0.6});  // bottom side (normal -z)
  return scene;
}

Scene make_parallel_squares(double d, double emission_top,
                            double reflectance) {
  Scene scene;
  // Bottom square in z=0 facing up, top square in z=d facing down.
  scene.patches.push_back(
      {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, 0.0, reflectance});
  scene.patches.push_back(
      {{0, 0, d}, {0, 1, 0}, {1, 0, 0}, emission_top, reflectance});
  return scene;
}

}  // namespace gbsp
