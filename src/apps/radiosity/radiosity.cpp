#include "apps/radiosity/radiosity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gbsp {

namespace {

double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

}  // namespace

HierarchicalRadiosity::HierarchicalRadiosity(const Scene& scene,
                                             RadiosityConfig cfg)
    : scene_(scene), cfg_(cfg) {
  roots_.reserve(scene_.patches.size());
  for (int p = 0; p < static_cast<int>(scene_.patches.size()); ++p) {
    roots_.push_back(make_root(p));
  }
}

int HierarchicalRadiosity::make_root(int patch) {
  Element e;
  e.patch = patch;
  const Patch& p = scene_.patches[static_cast<std::size_t>(patch)];
  e.area = p.area();
  e.center = p.center();
  e.radiosity = p.emission;  // initial guess: pure emission
  elements_.push_back(e);
  return static_cast<int>(elements_.size()) - 1;
}

int HierarchicalRadiosity::subdivide(int element) {
  Element& e = elements_[static_cast<std::size_t>(element)];
  if (!e.leaf()) return e.child[0];
  const Patch& p = scene_.patches[static_cast<std::size_t>(e.patch)];
  const double sm = 0.5 * (e.s0 + e.s1);
  const double tm = 0.5 * (e.t0 + e.t1);
  const double quads[4][4] = {{e.s0, e.t0, sm, tm},
                              {sm, e.t0, e.s1, tm},
                              {e.s0, tm, sm, e.t1},
                              {sm, tm, e.s1, e.t1}};
  // Copy fields used after the reallocation that push_back may cause.
  const int patch = e.patch;
  const int depth = e.depth;
  const double area = e.area;
  const double radiosity = e.radiosity;
  int first = -1;
  for (int k = 0; k < 4; ++k) {
    Element c;
    c.patch = patch;
    c.parent = element;
    c.depth = depth + 1;
    c.s0 = quads[k][0];
    c.t0 = quads[k][1];
    c.s1 = quads[k][2];
    c.t1 = quads[k][3];
    c.area = area / 4.0;
    c.center = p.point_at(0.5 * (c.s0 + c.s1), 0.5 * (c.t0 + c.t1));
    c.radiosity = radiosity;
    elements_.push_back(c);
    const int id = static_cast<int>(elements_.size()) - 1;
    elements_[static_cast<std::size_t>(element)].child[k] = id;
    if (k == 0) first = id;
  }
  return first;
}

double HierarchicalRadiosity::estimate_ff(int r, int s) const {
  const Element& er = elements_[static_cast<std::size_t>(r)];
  const Element& es = elements_[static_cast<std::size_t>(s)];
  if (er.patch == es.patch) return 0.0;  // flat patches don't see themselves
  const Vec3 d = es.center - er.center;
  const double d2 = d.norm2();
  if (d2 <= 0) return 0.0;
  const double dist = std::sqrt(d2);
  const Vec3 dir = d * (1.0 / dist);
  const double cos_r =
      dot(scene_.patches[static_cast<std::size_t>(er.patch)].normal(), dir);
  const double cos_s = -dot(
      scene_.patches[static_cast<std::size_t>(es.patch)].normal(), dir);
  if (cos_r <= 0 || cos_s <= 0) return 0.0;
  if (scene_.occluded(er.center, es.center, er.patch, es.patch)) return 0.0;
  return cos_r * cos_s * es.area / (M_PI * d2 + es.area);
}

void HierarchicalRadiosity::refine_pair(int receiver, int source,
                                        bool keep_links) {
  const double F = estimate_ff(receiver, source);
  if (F <= 0.0) return;
  const Element& er = elements_[static_cast<std::size_t>(receiver)];
  const Element& es = elements_[static_cast<std::size_t>(source)];
  const bool r_divisible = er.depth < cfg_.max_depth;
  const bool s_divisible = es.depth < cfg_.max_depth;
  if (F < cfg_.ff_eps || (!r_divisible && !s_divisible)) {
    if (keep_links) {
      links_.push_back({receiver, source, F});
    }
    return;
  }
  // Subdivide the side subtending the larger solid angle (by area).
  if (s_divisible && (es.area >= er.area || !r_divisible)) {
    const int first = subdivide(source);
    for (int k = 0; k < 4; ++k) refine_pair(receiver, first + k, keep_links);
  } else {
    const int first = subdivide(receiver);
    for (int k = 0; k < 4; ++k) refine_pair(first + k, source, keep_links);
  }
}

void HierarchicalRadiosity::build(
    const std::function<bool(int)>& owns_receiver) {
  const int n = static_cast<int>(scene_.patches.size());
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      if (p == q) continue;
      refine_pair(roots_[static_cast<std::size_t>(p)],
                  roots_[static_cast<std::size_t>(q)], owns_receiver(p));
    }
  }
}

void HierarchicalRadiosity::push_pull(int element, double inherited) {
  Element& e = elements_[static_cast<std::size_t>(element)];
  const double down = inherited + e.gathered;
  if (e.leaf()) {
    const Patch& p = scene_.patches[static_cast<std::size_t>(e.patch)];
    e.radiosity = p.emission + p.reflectance * down;
    return;
  }
  double acc = 0.0;
  for (int k = 0; k < 4; ++k) {
    push_pull(e.child[k], down);
    acc += elements_[static_cast<std::size_t>(e.child[k])].radiosity;
  }
  elements_[static_cast<std::size_t>(element)].radiosity = acc / 4.0;
}

double HierarchicalRadiosity::sweep(
    const std::function<bool(int)>& owns_patch) {
  // Gather at link level.
  for (Element& e : elements_) e.gathered = 0.0;
  for (const Link& l : links_) {
    elements_[static_cast<std::size_t>(l.receiver)].gathered +=
        l.F * elements_[static_cast<std::size_t>(l.source)].radiosity;
  }
  // Push-pull per owned patch; track the largest change.
  double delta = 0.0;
  for (int p = 0; p < static_cast<int>(roots_.size()); ++p) {
    if (!owns_patch(p)) continue;
    const int root = roots_[static_cast<std::size_t>(p)];
    const double before =
        elements_[static_cast<std::size_t>(root)].radiosity;
    push_pull(root, 0.0);
    delta = std::max(delta,
                     std::abs(elements_[static_cast<std::size_t>(root)]
                                  .radiosity -
                              before));
  }
  return delta;
}

int HierarchicalRadiosity::solve() {
  double emax = 0.0;
  for (const auto& p : scene_.patches) emax = std::max(emax, p.emission);
  if (emax <= 0) emax = 1.0;
  auto all = [](int) { return true; };
  int it = 0;
  while (it < cfg_.max_iterations) {
    const double delta = sweep(all);
    ++it;
    if (delta < cfg_.tol * emax) break;
  }
  return it;
}

double HierarchicalRadiosity::patch_radiosity(int patch) const {
  return elements_[static_cast<std::size_t>(
                       roots_[static_cast<std::size_t>(patch)])]
      .radiosity;
}

double HierarchicalRadiosity::radiosity_at(int patch, double s,
                                           double t) const {
  int id = roots_[static_cast<std::size_t>(patch)];
  for (;;) {
    const Element& e = elements_[static_cast<std::size_t>(id)];
    if (e.leaf()) return e.radiosity;
    const double sm = 0.5 * (e.s0 + e.s1);
    const double tm = 0.5 * (e.t0 + e.t1);
    const int k = (s >= sm ? 1 : 0) | (t >= tm ? 2 : 0);
    id = e.child[k];
  }
}

}  // namespace gbsp
