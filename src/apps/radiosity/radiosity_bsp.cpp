#include "apps/radiosity/radiosity_bsp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace gbsp {

namespace {

struct WireHeader {
  double delta = 0.0;       // sender's largest radiosity change this sweep
  std::int64_t count = 0;   // entries following
};

struct WireEntry {
  std::int64_t element = 0;
  double radiosity = 0.0;
};

/// Element ids of the subtree under `root`, in deterministic order.
void collect_subtree(const std::vector<Element>& elements, int root,
                     std::vector<int>* out) {
  out->push_back(root);
  const Element& e = elements[static_cast<std::size_t>(root)];
  if (e.leaf()) return;
  for (int k = 0; k < 4; ++k) collect_subtree(elements, e.child[k], out);
}

}  // namespace

std::function<void(Worker&)> make_radiosity_program(
    const Scene& scene, RadiosityConfig cfg, std::vector<double>* patch_B_out,
    RadiosityRunInfo* info) {
  if (patch_B_out->size() != scene.patches.size()) {
    throw std::invalid_argument("radiosity: output not sized to patches");
  }
  return [&scene, cfg, patch_B_out, info](Worker& w) {
    const int p = w.nprocs();
    auto owns = [&w, p](int patch) { return patch % p == w.pid(); };

    HierarchicalRadiosity solver(scene, cfg);
    solver.build(owns);

    // Owned element ids, gathered once (the forest is fixed after build).
    std::vector<int> owned_elements;
    for (int patch = 0; patch < static_cast<int>(scene.patches.size());
         ++patch) {
      if (owns(patch)) {
        collect_subtree(solver.elements(), solver.root_of(patch),
                        &owned_elements);
      }
    }

    double emax = 0.0;
    for (const auto& pa : scene.patches) emax = std::max(emax, pa.emission);
    if (emax <= 0) emax = 1.0;

    int sweeps = 0;
    double global_delta = 0.0;
    std::vector<std::uint8_t> buf;
    while (sweeps < cfg.max_iterations) {
      const double my_delta = solver.sweep(owns);
      ++sweeps;

      // One superstep: owned radiosities + convergence vote to every peer.
      WireHeader h;
      h.delta = my_delta;
      h.count = static_cast<std::int64_t>(owned_elements.size());
      buf.resize(sizeof(h) + owned_elements.size() * sizeof(WireEntry));
      std::memcpy(buf.data(), &h, sizeof(h));
      for (std::size_t i = 0; i < owned_elements.size(); ++i) {
        WireEntry e;
        e.element = owned_elements[i];
        e.radiosity =
            solver.elements()[static_cast<std::size_t>(owned_elements[i])]
                .radiosity;
        std::memcpy(buf.data() + sizeof(h) + i * sizeof(e), &e, sizeof(e));
      }
      for (int d = 0; d < p; ++d) {
        if (d != w.pid()) w.send_bytes(d, buf.data(), buf.size());
      }
      w.sync();

      global_delta = my_delta;
      while (const Message* m = w.get_message()) {
        WireHeader rh;
        std::memcpy(&rh, m->payload.data(), sizeof(rh));
        global_delta = std::max(global_delta, rh.delta);
        for (std::int64_t i = 0; i < rh.count; ++i) {
          WireEntry e;
          std::memcpy(&e,
                      m->payload.data() + sizeof(rh) +
                          static_cast<std::size_t>(i) * sizeof(e),
                      sizeof(e));
          solver.set_radiosity(static_cast<int>(e.element), e.radiosity);
        }
      }
      if (global_delta < cfg.tol * emax) break;
    }

    for (int patch = 0; patch < static_cast<int>(scene.patches.size());
         ++patch) {
      if (owns(patch)) {
        (*patch_B_out)[static_cast<std::size_t>(patch)] =
            solver.patch_radiosity(patch);
      }
    }
    if (w.pid() == 0) {
      info->sweeps = sweeps;
      info->final_delta = global_delta;
    }
  };
}

std::vector<double> bsp_radiosity(const Scene& scene, RadiosityConfig cfg,
                                  int nprocs, RadiosityRunInfo* info) {
  std::vector<double> out(scene.patches.size(), 0.0);
  RadiosityRunInfo local;
  Config rc;
  rc.nprocs = nprocs;
  Runtime rt(rc);
  rt.run(make_radiosity_program(scene, cfg, &out, info ? info : &local));
  return out;
}

}  // namespace gbsp
