// Hierarchical radiosity (Hanrahan, Salzman & Aupperle 1991) — the second
// of the paper's Section 5 planned applications.
//
// Each input patch carries a quadtree of elements. Link refinement descends
// pairs of elements until the estimated form factor falls below ff_eps (or
// the subdivision limits are hit), producing O(n) links instead of the
// O(n^2) full matrix. The solution iterates: GATHER irradiance across the
// links at whatever level each link lives, then PUSH the gathered
// irradiance down each quadtree and PULL area-averaged radiosity back up,
// until the radiosity fixed point B = E + rho * (F B) converges.
//
// Form factors use the point-to-disk estimate
//     F = cos(theta_r) cos(theta_s) A_s / (pi r^2 + A_s)
// with binary center-to-center visibility.
//
// The BSP parallelization (radiosity_bsp.cpp) replicates the deterministic
// refinement, distributes patches round-robin, and exchanges element
// radiosities once per superstep — one gather/push-pull sweep per
// superstep, like the paper's other iterative applications.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "apps/radiosity/scene.hpp"

namespace gbsp {

struct RadiosityConfig {
  double ff_eps = 0.05;  ///< refine links with estimated F above this
  int max_depth = 5;     ///< element quadtree depth limit per patch
  int max_iterations = 24;
  double tol = 1e-6;     ///< stop when the largest radiosity change drops
                         ///< below tol * max emission
};

/// One element of a patch quadtree.
struct Element {
  std::int32_t patch = 0;
  std::int32_t parent = -1;
  std::int32_t child[4] = {-1, -1, -1, -1};
  std::int32_t depth = 0;
  double s0 = 0, t0 = 0, s1 = 1, t1 = 1;  // patch parameter rectangle
  double area = 0;
  Vec3 center;
  double radiosity = 0;  // B
  double gathered = 0;   // irradiance gathered this sweep

  [[nodiscard]] bool leaf() const { return child[0] < 0; }
};

/// A link: `receiver` gathers F * B(source).
struct Link {
  std::int32_t receiver = 0;
  std::int32_t source = 0;
  double F = 0;
};

class HierarchicalRadiosity {
 public:
  HierarchicalRadiosity(const Scene& scene, RadiosityConfig cfg);

  /// Runs link refinement. `owns_receiver(patch)` selects the patches whose
  /// incoming links this instance keeps (everything, in the sequential
  /// case). Element subdivision is performed for ALL pairs so that every
  /// instance builds the identical element forest.
  void build(const std::function<bool(int)>& owns_receiver);

  /// One gather + push-pull sweep over the owned patches; returns the
  /// largest |delta B| over their elements.
  double sweep(const std::function<bool(int)>& owns_patch);

  /// Sequential solve over all patches: sweeps to convergence, returns the
  /// number of sweeps.
  int solve();

  // --- solution access ------------------------------------------------------
  [[nodiscard]] double patch_radiosity(int patch) const;  ///< area average
  [[nodiscard]] double radiosity_at(int patch, double s, double t) const;

  // --- structure access (tests, BSP exchange) -------------------------------
  [[nodiscard]] const std::vector<Element>& elements() const {
    return elements_;
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] int root_of(int patch) const {
    return roots_[static_cast<std::size_t>(patch)];
  }
  [[nodiscard]] const Scene& scene() const { return scene_; }
  void set_radiosity(int element, double b) {
    elements_[static_cast<std::size_t>(element)].radiosity = b;
  }

  /// Estimated form factor from element r to element s (exposed for tests).
  [[nodiscard]] double estimate_ff(int r, int s) const;

 private:
  int make_root(int patch);
  int subdivide(int element);  // returns first child id
  void refine_pair(int receiver, int source, bool keep_links);
  void push_pull(int element, double inherited);

  const Scene& scene_;
  RadiosityConfig cfg_;
  std::vector<Element> elements_;
  std::vector<int> roots_;
  std::vector<Link> links_;
};

}  // namespace gbsp
