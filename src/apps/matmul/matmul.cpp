#include "apps/matmul/matmul.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/collectives.hpp"
#include "util/kernels.hpp"
#include "util/rng.hpp"

namespace gbsp {

double Matrix::max_abs_diff(const Matrix& other) const {
  if (other.n_ != n_) throw std::invalid_argument("max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a_.size(); ++i) {
    m = std::max(m, std::abs(a_[i] - other.a_[i]));
  }
  return m;
}

Matrix random_matrix(int n, std::uint64_t seed) {
  Matrix m(n);
  Xoshiro256 rng(seed);
  double* p = m.data();
  for (std::size_t i = 0; i < static_cast<std::size_t>(n) * n; ++i) {
    p[i] = rng.uniform(-1.0, 1.0);
  }
  return m;
}

Matrix matmul_naive(const Matrix& A, const Matrix& B) {
  const int n = A.n();
  if (B.n() != n) throw std::invalid_argument("matmul: size mismatch");
  Matrix C(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) acc += A.at(i, k) * B.at(k, j);
      C.at(i, j) = acc;
    }
  }
  return C;
}

void block_multiply_add(const double* Ablk, const double* Bblk, double* Cblk,
                        int bn) {
  // i-k-j: streams B and C rows, the standard cache-friendly order.
  // Retained as the scalar reference kernel (tests and the before/after
  // rows of bench_kernels); production paths call kernels::dgemm_add.
  for (int i = 0; i < bn; ++i) {
    double* crow = Cblk + static_cast<std::size_t>(i) * bn;
    for (int k = 0; k < bn; ++k) {
      const double aik = Ablk[static_cast<std::size_t>(i) * bn + k];
      const double* brow = Bblk + static_cast<std::size_t>(k) * bn;
      for (int j = 0; j < bn; ++j) crow[j] += aik * brow[j];
    }
  }
}

Matrix matmul_blocked(const Matrix& A, const Matrix& B) {
  const int n = A.n();
  if (B.n() != n) throw std::invalid_argument("matmul: size mismatch");
  Matrix C(n);
  kernels::dgemm_add(A.data(), n, B.data(), n, C.data(), n, n, n, n);
  return C;
}

int cannon_grid_dim(int nprocs, int n) {
  const int q = static_cast<int>(std::lround(std::sqrt(nprocs)));
  if (q * q != nprocs) {
    throw std::invalid_argument("cannon: nprocs must be a perfect square");
  }
  if (n % q != 0) {
    throw std::invalid_argument("cannon: sqrt(p) must divide n");
  }
  return q;
}

int cannon_active_grid_dim(int nprocs, int n) {
  if (nprocs < 1) throw std::invalid_argument("cannon: nprocs must be >= 1");
  int q = static_cast<int>(std::floor(std::sqrt(static_cast<double>(nprocs))));
  while (q * q > nprocs) --q;       // guard against sqrt rounding up
  while ((q + 1) * (q + 1) <= nprocs) ++q;
  if (n % q != 0) {
    throw std::invalid_argument("cannon: grid dimension must divide n");
  }
  return q;
}

namespace {

void copy_block_in(const double* src, int n, int bx, int by, int bn,
                   double* dst) {
  for (int i = 0; i < bn; ++i) {
    const double* row = src + static_cast<std::size_t>(bx * bn + i) * n +
                        static_cast<std::size_t>(by) * bn;
    std::copy(row, row + bn, dst + static_cast<std::size_t>(i) * bn);
  }
}

void copy_block_out(const double* src, int bx, int by, int bn, Matrix* dst) {
  for (int i = 0; i < bn; ++i) {
    double* row = dst->data() +
                  static_cast<std::size_t>(bx * bn + i) * dst->n() +
                  static_cast<std::size_t>(by) * bn;
    std::copy(src + static_cast<std::size_t>(i) * bn,
              src + static_cast<std::size_t>(i + 1) * bn, row);
  }
}

// The shared Cannon body: both entry points (shared-layout and
// broadcast-layout) land here with row-major n x n operand arrays, so they
// execute the identical kernel sequence on identical operands — the
// bit-identical-C guarantee the regression tests pin down.
void cannon_body(Worker& w, const double* Aflat, const double* Bflat, int n,
                 Matrix* C, SyncMode mode) {
  const int q = cannon_active_grid_dim(w.nprocs(), n);
  if (w.pid() >= q * q) {
    // Processor outside the q x q compute grid (non-perfect-square p):
    // idle through the grid's superstep structure — two sync()s per shift
    // iteration — so the global barriers stay matched.
    for (int t = 1; t < q; ++t) {
      w.sync();
      w.sync();
    }
    return;
  }
  const int bn = n / q;
  const std::size_t bsz = static_cast<std::size_t>(bn) * bn;
  const int x = w.pid() / q;
  const int y = w.pid() % q;

  // The paper's pre-skewed initial layout.
  std::vector<double> a(bsz), b(bsz), c(bsz, 0.0), a_in(bsz), b_in(bsz);
  copy_block_in(Aflat, n, x, (x + y) % q, bn, a.data());
  copy_block_in(Bflat, n, (x + y) % q, y, bn, b.data());

  const int right = x * q + (y + 1) % q;      // A travels right
  const int below = ((x + 1) % q) * q + y;    // B travels down

  for (int t = 0; t < q; ++t) {
    if (mode == SyncMode::SplitPhase && t + 1 < q) {
      // Ship the resident blocks first (stage_send copies them out), then
      // multiply inside the window while the shift travels. Same kernel,
      // same operands, same order as the rigid iteration below.
      w.send_array(right, a);
      w.send_array(below, b);
      w.sync_begin();
      kernels::dgemm_add(a.data(), b.data(), c.data(), bn);
      w.sync_end();
    } else {
      kernels::dgemm_add(a.data(), b.data(), c.data(), bn);
      if (t + 1 == q) break;
      // Superstep boundary 1: ship the blocks onward.
      w.send_array(right, a);
      w.send_array(below, b);
      w.sync();
    }
    // Unpack superstep: read the two incoming blocks (the paper's
    // message-passing "read messages" step), then a second boundary.
    int got = 0;
    while (const Message* m = w.get_message()) {
      // A blocks come from the left neighbor, B blocks from above.
      const int from_left = x * q + (y + q - 1) % q;
      if (static_cast<int>(m->source) == from_left) {
        std::memcpy(a_in.data(), m->payload.data(), bsz * sizeof(double));
      } else {
        std::memcpy(b_in.data(), m->payload.data(), bsz * sizeof(double));
      }
      ++got;
    }
    if (got != (w.nprocs() > 1 ? 2 : 0)) {
      throw std::logic_error("cannon: expected exactly two blocks");
    }
    a.swap(a_in);
    b.swap(b_in);
    w.sync();
  }
  copy_block_out(c.data(), x, y, bn, C);
}

}  // namespace

std::function<void(Worker&)> make_cannon_program(const Matrix& A,
                                                 const Matrix& B, Matrix* C,
                                                 SyncMode mode) {
  const int n = A.n();
  if (B.n() != n || C->n() != n) {
    throw std::invalid_argument("cannon: size mismatch");
  }
  return [&A, &B, C, n, mode](Worker& w) {
    cannon_body(w, A.data(), B.data(), n, C, mode);
  };
}

std::function<void(Worker&)> make_cannon_broadcast_program(const Matrix& A,
                                                           const Matrix& B,
                                                           Matrix* C,
                                                           SyncMode mode) {
  const int n = A.n();
  if (B.n() != n || C->n() != n) {
    throw std::invalid_argument("cannon: size mismatch");
  }
  return [&A, &B, C, n, mode](Worker& w) {
    // Rank 0 is the only rank that reads the operand values; everyone else
    // receives its replica through the bulk collective (one combined
    // message per destination, Direct vs Tree chosen by the (g, L)
    // selector). Idle ranks outside the compute grid participate too —
    // broadcast_span is collective over the whole run.
    const std::size_t total = static_cast<std::size_t>(n) * n;
    std::vector<double> a_all(total), b_all(total);
    if (w.pid() == 0) {
      std::copy(A.data(), A.data() + total, a_all.begin());
      std::copy(B.data(), B.data() + total, b_all.begin());
    }
    broadcast_span(w, 0, a_all.data(), total);
    broadcast_span(w, 0, b_all.data(), total);
    cannon_body(w, a_all.data(), b_all.data(), n, C, mode);
  };
}

}  // namespace gbsp
