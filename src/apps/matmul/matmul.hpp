// Dense matrix multiplication with Cannon's algorithm (paper Section 3.6).
//
// The input matrices are distributed in the paper's pre-skewed block layout:
// with p = q^2 processors and blocks of size n/q, processor i = (x, y)
// (x = floor(i/q), y = i mod q) initially holds block (x, (x+y) mod q) of A
// and block ((x+y) mod q, y) of B. The algorithm runs q iterations; each
// multiplies the two resident blocks into C(x, y), then sends the A block to
// the right neighbor and the B block to the neighbor below (mod q).
//
// Superstep structure matches the paper's counts (S = 2*sqrt(p) - 1): every
// iteration except the last is [multiply+send | sync | unpack | sync]; the
// final multiply is the tail superstep.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runtime.hpp"

namespace gbsp {

/// Dense row-major square matrix.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(int n) : n_(n), a_(static_cast<std::size_t>(n) * n, 0.0) {}

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] double& at(int i, int j) {
    return a_[static_cast<std::size_t>(i) * n_ + j];
  }
  [[nodiscard]] double at(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * n_ + j];
  }
  [[nodiscard]] double* data() { return a_.data(); }
  [[nodiscard]] const double* data() const { return a_.data(); }

  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

 private:
  int n_ = 0;
  std::vector<double> a_;
};

/// Matrix with entries uniform in [-1, 1), deterministic in `seed`.
Matrix random_matrix(int n, std::uint64_t seed);

/// Unblocked i-j-k product (test oracle).
Matrix matmul_naive(const Matrix& A, const Matrix& B);

/// The sequential baseline — the "sequential blocked matrix multiplication
/// algorithm" each processor also uses on its local blocks.  Since the
/// kernel-layer rework this is the packed, register-blocked
/// kernels::dgemm_add over the whole matrix.
Matrix matmul_blocked(const Matrix& A, const Matrix& B);

/// C[0..bn,0..bn] += Ablk * Bblk for row-major bn x bn blocks: the scalar
/// i-k-j reference kernel.  Production paths (Cannon's per-superstep
/// multiply, matmul_blocked) use kernels::dgemm_add; this stays as the
/// equivalence/benchmark baseline.
void block_multiply_add(const double* Ablk, const double* Bblk, double* Cblk,
                        int bn);

/// Number of Cannon iterations = sqrt(p); throws unless p is a perfect
/// square and sqrt(p) divides n (the paper's stated precondition).
int cannon_grid_dim(int nprocs, int n);

/// Side length of the active compute grid actually used by
/// make_cannon_program: the largest q with q*q <= nprocs.  Throws if q does
/// not divide n.  Equal to cannon_grid_dim when nprocs is a perfect square.
int cannon_active_grid_dim(int nprocs, int n);

/// SPMD program computing C = A * B on a q x q processor grid
/// (q = cannon_active_grid_dim).  A and B are shared read-only inputs; each
/// worker writes its C block into the shared output (disjoint regions, so
/// no synchronization is needed). The output matrix must be pre-sized to
/// n x n.  When nprocs is not a perfect square, the processors beyond the
/// q x q grid idle through the same 2*(q-1) sync()s as the active ones.
///
/// SyncMode::SplitPhase reorders each shift iteration to ship the resident
/// A/B blocks *before* multiplying them (stage_send copies, so the blocks
/// stay readable), then runs the O((n/q)^3) dgemm inside the split-phase
/// window while they travel.  Same boundary count, same message bytes, and —
/// because the same kernel runs on the same operands in the same order —
/// a bit-identical C.
std::function<void(Worker&)> make_cannon_program(const Matrix& A,
                                                 const Matrix& B, Matrix* C,
                                                 SyncMode mode = SyncMode::Rigid);

/// Broadcast-layout Cannon: only rank 0's A and B values are read; every
/// other rank receives its operand replica up front through the bulk
/// collective broadcast_span (core/collectives.hpp — one combined message
/// per destination, Direct vs Tree picked by the (g, L) selector, or forced
/// by Config::collective_schedule). This is the distribution Cannon needs on
/// a cross-process mesh, where there is no shared input matrix to read.
/// After the two broadcasts the identical Cannon body runs on the identical
/// operands, so C is bit-identical to make_cannon_program's.
std::function<void(Worker&)> make_cannon_broadcast_program(
    const Matrix& A, const Matrix& B, Matrix* C,
    SyncMode mode = SyncMode::Rigid);

}  // namespace gbsp
