// Distributed minimum spanning tree (paper Section 3.3).
//
// Three phases, following the paper:
//
//  1. LOCAL: each processor repeatedly merges components whose globally
//     minimum outgoing edge has both endpoints home (a Boruvka restricted to
//     merges that are provably safe without communication). "The program
//     starts out with a completely local phase that computes the local
//     components of the minimum spanning tree."
//
//  2. PARALLEL: distributed Boruvka rounds in the spirit of the
//     Leiserson–Maggs conservative DRAM algorithm. Components are named by
//     the minimum global node id they contain; the processor owning that
//     node is the component's bookkeeper. Each round:
//       - every processor sends, per component, its best outgoing edge to
//         the component's owner (messages bounded by border counts — the
//         "conservative" property);
//       - owners pick the global minimum and exchange choices, hooking
//         components (mutual choices pick the same edge under the total
//         order on edges, recorded once by the smaller label's owner);
//       - owners pointer-jump the parent forest to roots (each jump round is
//         query / reply / changed-flag supersteps);
//       - node labels are refreshed from their old component's root and
//         pushed to border watchers.
//
//  3. ENDGAME: "once the number of components becomes small", every
//     processor sends the minimum edge between each pair of adjacent
//     components to processor 0, which finishes the forest sequentially
//     (Kruskal over the contracted graph) and broadcasts the result.
//
// Edge weights are compared by the total order (w, min id, max id), so all
// decisions are deterministic and mutual choices are consistent even with
// duplicate weights.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/runtime.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"

namespace gbsp {

struct MstConfig {
  /// Switch to the endgame at or below this many components (scaled by the
  /// larger of this and 2 * nprocs).
  int endgame_components = 64;
  /// Safety cap on Boruvka rounds (the endgame finishes whatever remains).
  int max_rounds = 64;
  /// Ship the actual tree edges to processor 0 (tests); weight and edge
  /// count are always computed.
  bool collect_edges = false;
};

struct MstParallelResult {
  double total_weight = 0.0;
  std::int64_t edge_count = 0;
  std::vector<Edge> edges;  ///< filled only when MstConfig::collect_edges
};

/// SPMD program. `result` is written by processor 0 before the program ends
/// (all processors learn total_weight/edge_count via the final broadcast).
/// Run with nprocs == part.nparts.
std::function<void(Worker&)> make_mst_program(const GraphPartition& part,
                                              MstConfig cfg,
                                              MstParallelResult* result);

/// Convenience wrapper for tests/examples: partitions, runs, returns result.
MstParallelResult bsp_mst(const Graph& g, const std::vector<Point2>& points,
                          int nprocs, MstConfig cfg = {});

}  // namespace gbsp
