#include "apps/mst/mst.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/collectives.hpp"
#include "graph/union_find.hpp"

namespace gbsp {

namespace {

// Every edge is identified by (w, min endpoint, max endpoint); comparisons
// use this total order so that all processors make consistent choices even
// with duplicate weights.
struct EdgeKey {
  double w = std::numeric_limits<double>::infinity();
  std::int32_t a = 0;  // min global endpoint
  std::int32_t b = 0;  // max global endpoint

  static EdgeKey make(double w, int u, int v) {
    return {w, static_cast<std::int32_t>(std::min(u, v)),
            static_cast<std::int32_t>(std::max(u, v))};
  }
  [[nodiscard]] bool valid() const {
    return w != std::numeric_limits<double>::infinity();
  }
};

bool operator<(const EdgeKey& x, const EdgeKey& y) {
  if (x.w != y.w) return x.w < y.w;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

// ---- wire formats (one type per superstep phase) --------------------------

struct LabelMsg {
  std::int32_t node = 0;   // global node id
  std::int32_t label = 0;  // its new component label
};

// Candidate / choice / endgame-candidate record.
struct EdgeMsg {
  double w = 0.0;
  std::int32_t gu = 0;      // global endpoints of the edge
  std::int32_t gv = 0;
  std::int32_t c_from = 0;  // component proposing/owning the edge
  std::int32_t c_to = 0;    // component on the other side
};

struct QueryMsg {
  std::int32_t c = 0;       // component being resolved
  std::int32_t target = 0;  // label whose parent is requested
};

struct ReplyMsg {
  std::int32_t c = 0;
  std::int32_t value = 0;
};

struct EndgameHeader {
  double weight = 0.0;        // sender's accumulated tree weight
  std::int64_t count = 0;     // sender's accumulated tree edge count
  std::int32_t ncand = 0;     // EdgeMsg records following
  std::int32_t nedges = 0;    // TreeEdgeMsg records following (collect mode)
};

struct TreeEdgeMsg {
  std::int32_t u = 0;
  std::int32_t v = 0;
  double w = 0.0;
};

struct FinalMsg {
  double weight = 0.0;
  std::int64_t count = 0;
};

std::uint64_t pair_key(int a, int b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

std::function<void(Worker&)> make_mst_program(const GraphPartition& part,
                                              MstConfig cfg,
                                              MstParallelResult* result) {
  return [&part, cfg, result](Worker& w) {
    if (w.nprocs() != part.nparts) {
      throw std::invalid_argument("mst: nprocs != partition parts");
    }
    const GraphPart& gp = part.parts[static_cast<std::size_t>(w.pid())];
    const int nl = gp.num_local;
    const int nh = gp.num_home;

    double my_weight = 0.0;
    std::int64_t my_count = 0;
    std::vector<TreeEdgeMsg> my_edges;
    auto record_edge = [&](double weight, int gu, int gv) {
      my_weight += weight;
      ++my_count;
      if (cfg.collect_edges) {
        my_edges.push_back({static_cast<std::int32_t>(gu),
                            static_cast<std::int32_t>(gv), weight});
      }
    };

    // ---------------- phase 1: local merges that are provably safe ---------
    // One Kruskal-style pass over the home-home edges in ascending order.
    // An edge may be taken only when it is lighter than the lightest border
    // edge of either endpoint's component: all lighter home-home edges have
    // already been processed, so the edge is then the minimum edge leaving
    // that component — in the MST by the cut property. (Rejections are
    // final: component border minima only decrease under unions.)
    UnionFind uf(nh);
    {
      const EdgeKey kNoBorder{};  // infinity: component touches no border
      std::vector<EdgeKey> border_min(static_cast<std::size_t>(nh),
                                      kNoBorder);
      struct HomeEdge {
        EdgeKey key;
        int u_local, v_local;
        double w;
      };
      std::vector<HomeEdge> home_edges;
      for (int u = 0; u < nh; ++u) {
        const int gu = gp.local_to_global[static_cast<std::size_t>(u)];
        const auto nbrs = gp.neighbors(u);
        const auto ws = gp.edge_weights(u);
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
          const int v = nbrs[e];
          const int gv = gp.local_to_global[static_cast<std::size_t>(v)];
          const EdgeKey key = EdgeKey::make(ws[e], gu, gv);
          if (gp.is_home(v)) {
            if (u < v) home_edges.push_back({key, u, v, ws[e]});
          } else if (key < border_min[static_cast<std::size_t>(u)]) {
            border_min[static_cast<std::size_t>(u)] = key;
          }
        }
      }
      std::sort(home_edges.begin(), home_edges.end(),
                [](const HomeEdge& a, const HomeEdge& b) {
                  return a.key < b.key;
                });
      for (const HomeEdge& e : home_edges) {
        const int ru = uf.find(e.u_local);
        const int rv = uf.find(e.v_local);
        if (ru == rv) continue;
        if (e.key < border_min[static_cast<std::size_t>(ru)] ||
            e.key < border_min[static_cast<std::size_t>(rv)]) {
          uf.unite(ru, rv);
          const int rn = uf.find(ru);
          border_min[static_cast<std::size_t>(rn)] =
              std::min(border_min[static_cast<std::size_t>(ru)],
                       border_min[static_cast<std::size_t>(rv)]);
          record_edge(
              e.w, gp.local_to_global[static_cast<std::size_t>(e.u_local)],
              gp.local_to_global[static_cast<std::size_t>(e.v_local)]);
        }
      }
    }

    // Labels: minimum global id in the local fragment.
    std::vector<int> label(static_cast<std::size_t>(nl), -1);
    {
      std::unordered_map<int, int> min_global;  // uf root -> min global id
      for (int u = 0; u < nh; ++u) {
        const int r = uf.find(u);
        const int gu = gp.local_to_global[static_cast<std::size_t>(u)];
        auto [it, fresh] = min_global.emplace(r, gu);
        if (!fresh && gu < it->second) it->second = gu;
      }
      for (int u = 0; u < nh; ++u) {
        label[static_cast<std::size_t>(u)] = min_global.at(uf.find(u));
      }
    }

    // Initial labels to watchers (fills every border copy's label).
    auto push_labels_to_watchers = [&](const std::vector<int>& changed_homes) {
      for (int h : changed_homes) {
        const LabelMsg m{static_cast<std::int32_t>(
                             gp.local_to_global[static_cast<std::size_t>(h)]),
                         static_cast<std::int32_t>(
                             label[static_cast<std::size_t>(h)])};
        for (int dest : gp.watchers[static_cast<std::size_t>(h)]) {
          w.send(dest, m);
        }
      }
      w.sync();
      while (const Message* m = w.get_message()) {
        const LabelMsg lm = m->as<LabelMsg>();
        label[static_cast<std::size_t>(gp.global_to_local.at(lm.node))] =
            lm.label;
      }
    };
    {
      std::vector<int> all_homes(static_cast<std::size_t>(nh));
      for (int h = 0; h < nh; ++h) all_homes[static_cast<std::size_t>(h)] = h;
      push_labels_to_watchers(all_homes);
    }

    auto count_components = [&]() -> std::int64_t {
      std::int64_t mine = 0;
      for (int h = 0; h < nh; ++h) {
        if (label[static_cast<std::size_t>(h)] ==
            gp.local_to_global[static_cast<std::size_t>(h)]) {
          ++mine;
        }
      }
      const auto counts = allgather(w, mine);
      std::int64_t total = 0;
      for (auto c : counts) total += c;
      return total;
    };

    const std::int64_t threshold = std::max<std::int64_t>(
        cfg.endgame_components, 2 * static_cast<std::int64_t>(w.nprocs()));

    std::int64_t components = count_components();
    std::int64_t prev_components = -1;
    int round = 0;

    // ---------------- phase 2: distributed Boruvka rounds ------------------
    while (components > threshold && components != prev_components &&
           round < cfg.max_rounds) {
      prev_components = components;
      ++round;

      // Owned live labels for this round.
      std::unordered_map<int, int> parent;  // label -> parent label
      for (int h = 0; h < nh; ++h) {
        const int gh = gp.local_to_global[static_cast<std::size_t>(h)];
        if (label[static_cast<std::size_t>(h)] == gh) parent.emplace(gh, gh);
      }

      // (a) best outgoing edge per local fragment -> component owner.
      {
        std::unordered_map<int, EdgeMsg> best;  // my fragment label -> best
        for (int u = 0; u < nh; ++u) {
          const int lu = label[static_cast<std::size_t>(u)];
          const int gu = gp.local_to_global[static_cast<std::size_t>(u)];
          const auto nbrs = gp.neighbors(u);
          const auto ws = gp.edge_weights(u);
          for (std::size_t e = 0; e < nbrs.size(); ++e) {
            const int v = nbrs[e];
            const int lv = label[static_cast<std::size_t>(v)];
            if (lu == lv) continue;
            const int gv = gp.local_to_global[static_cast<std::size_t>(v)];
            const EdgeKey key = EdgeKey::make(ws[e], gu, gv);
            auto [it, fresh] = best.emplace(
                lu, EdgeMsg{ws[e], static_cast<std::int32_t>(gu),
                            static_cast<std::int32_t>(gv),
                            static_cast<std::int32_t>(lu),
                            static_cast<std::int32_t>(lv)});
            if (!fresh &&
                key < EdgeKey::make(it->second.w, it->second.gu,
                                    it->second.gv)) {
              it->second = EdgeMsg{ws[e], static_cast<std::int32_t>(gu),
                                   static_cast<std::int32_t>(gv),
                                   static_cast<std::int32_t>(lu),
                                   static_cast<std::int32_t>(lv)};
            }
          }
        }
        for (const auto& [lu, cand] : best) {
          w.send(part.owner[static_cast<std::size_t>(lu)], cand);
        }
      }
      w.sync();

      // (b) owners pick global minima and exchange choices.
      std::unordered_map<int, EdgeMsg> choice;  // owned label -> chosen edge
      while (const Message* m = w.get_message()) {
        const EdgeMsg cand = m->as<EdgeMsg>();
        auto [it, fresh] = choice.emplace(cand.c_from, cand);
        if (!fresh && EdgeKey::make(cand.w, cand.gu, cand.gv) <
                          EdgeKey::make(it->second.w, it->second.gu,
                                        it->second.gv)) {
          it->second = cand;
        }
      }
      for (const auto& [c, ch] : choice) {
        w.send(part.owner[static_cast<std::size_t>(ch.c_to)], ch);
      }
      w.sync();

      // (c) hooking. Mutual choices (c <-> c2) involve the same edge under
      // the total order; the smaller label becomes the root and records it.
      {
        std::unordered_map<std::uint64_t, char> incoming;  // (from,to) pairs
        while (const Message* m = w.get_message()) {
          const EdgeMsg ch = m->as<EdgeMsg>();
          incoming.emplace(
              (static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(ch.c_from))
               << 32) |
                  static_cast<std::uint32_t>(ch.c_to),
              1);
        }
        for (const auto& [c, ch] : choice) {
          const bool mutual =
              incoming.count((static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(ch.c_to))
                              << 32) |
                             static_cast<std::uint32_t>(c)) != 0;
          if (mutual && c < ch.c_to) {
            parent[c] = c;  // root of the mutual pair
            record_edge(ch.w, ch.gu, ch.gv);
          } else {
            parent[c] = ch.c_to;
            if (!mutual) record_edge(ch.w, ch.gu, ch.gv);
          }
        }
      }

      // (d) pointer jumping: parent[c] <- parent[parent[c]] until stable.
      for (;;) {
        for (const auto& [c, pc] : parent) {
          if (pc != c) {
            w.send(part.owner[static_cast<std::size_t>(pc)],
                   QueryMsg{static_cast<std::int32_t>(c),
                            static_cast<std::int32_t>(pc)});
          }
        }
        w.sync();
        while (const Message* m = w.get_message()) {
          const QueryMsg q = m->as<QueryMsg>();
          w.send(static_cast<int>(m->source),
                 ReplyMsg{q.c, static_cast<std::int32_t>(
                                   parent.at(q.target))});
        }
        w.sync();
        bool changed = false;
        while (const Message* m = w.get_message()) {
          const ReplyMsg r = m->as<ReplyMsg>();
          int& pc = parent.at(r.c);
          if (pc != r.value) {
            pc = r.value;
            changed = true;
          }
        }
        const auto flags = allgather(w, changed ? 1 : 0);
        if (std::none_of(flags.begin(), flags.end(),
                         [](int f) { return f != 0; })) {
          break;
        }
      }

      // (e) refresh node labels from their old component's root.
      {
        std::unordered_map<int, int> root_of;  // old label -> root
        for (int h = 0; h < nh; ++h) root_of.emplace(label[static_cast<std::size_t>(h)], -1);
        for (auto& [old_label, root] : root_of) {
          const int owner = part.owner[static_cast<std::size_t>(old_label)];
          if (owner == w.pid()) {
            root = parent.at(old_label);
          } else {
            w.send(owner, QueryMsg{static_cast<std::int32_t>(old_label),
                                   static_cast<std::int32_t>(old_label)});
          }
        }
        w.sync();
        while (const Message* m = w.get_message()) {
          const QueryMsg q = m->as<QueryMsg>();
          w.send(static_cast<int>(m->source),
                 ReplyMsg{q.c,
                          static_cast<std::int32_t>(parent.at(q.target))});
        }
        w.sync();
        while (const Message* m = w.get_message()) {
          const ReplyMsg r = m->as<ReplyMsg>();
          root_of.at(r.c) = r.value;
        }
        std::vector<int> changed_homes;
        for (int h = 0; h < nh; ++h) {
          const int root = root_of.at(label[static_cast<std::size_t>(h)]);
          if (root != label[static_cast<std::size_t>(h)]) {
            label[static_cast<std::size_t>(h)] = root;
            if (!gp.watchers[static_cast<std::size_t>(h)].empty()) {
              changed_homes.push_back(h);
            }
          }
        }
        push_labels_to_watchers(changed_homes);
      }

      components = count_components();
    }

    // ---------------- phase 3: endgame on processor 0 -----------------------
    {
      std::unordered_map<std::uint64_t, EdgeMsg> pair_best;
      for (int u = 0; u < nh; ++u) {
        const int lu = label[static_cast<std::size_t>(u)];
        const int gu = gp.local_to_global[static_cast<std::size_t>(u)];
        const auto nbrs = gp.neighbors(u);
        const auto ws = gp.edge_weights(u);
        for (std::size_t e = 0; e < nbrs.size(); ++e) {
          const int v = nbrs[e];
          const int lv = label[static_cast<std::size_t>(v)];
          if (lu == lv) continue;
          const int gv = gp.local_to_global[static_cast<std::size_t>(v)];
          const EdgeMsg cand{ws[e], static_cast<std::int32_t>(gu),
                             static_cast<std::int32_t>(gv),
                             static_cast<std::int32_t>(lu),
                             static_cast<std::int32_t>(lv)};
          auto [it, fresh] = pair_best.emplace(pair_key(lu, lv), cand);
          if (!fresh && EdgeKey::make(cand.w, cand.gu, cand.gv) <
                            EdgeKey::make(it->second.w, it->second.gu,
                                          it->second.gv)) {
            it->second = cand;
          }
        }
      }
      EndgameHeader hdr;
      hdr.weight = my_weight;
      hdr.count = my_count;
      hdr.ncand = static_cast<std::int32_t>(pair_best.size());
      hdr.nedges = static_cast<std::int32_t>(my_edges.size());
      std::vector<std::uint8_t> buf(sizeof(hdr) +
                                    pair_best.size() * sizeof(EdgeMsg) +
                                    my_edges.size() * sizeof(TreeEdgeMsg));
      std::memcpy(buf.data(), &hdr, sizeof(hdr));
      std::size_t off = sizeof(hdr);
      for (const auto& [k, cand] : pair_best) {
        std::memcpy(buf.data() + off, &cand, sizeof(cand));
        off += sizeof(cand);
      }
      if (!my_edges.empty()) {
        std::memcpy(buf.data() + off, my_edges.data(),
                    my_edges.size() * sizeof(TreeEdgeMsg));
      }
      // The gather leg of the endgame is exactly the bulk-collective shape:
      // each rank contributes one combined, self-describing block and rank 0
      // receives the concatenation in pid order (the same order the manual
      // drain observed — the root's own block parses first, so the floating
      // sum accumulates in the same sequence as before).
      const std::vector<std::uint8_t> all = gatherv(w, 0, buf);

      FinalMsg fin;
      if (w.pid() == 0) {
        double total_weight = 0.0;
        std::int64_t total_count = 0;
        std::vector<EdgeMsg> cands;
        std::vector<TreeEdgeMsg> all_edges;

        std::size_t o = 0;
        for (int s = 0; s < w.nprocs(); ++s) {
          EndgameHeader h;
          std::memcpy(&h, all.data() + o, sizeof(h));
          o += sizeof(h);
          total_weight += h.weight;
          total_count += h.count;
          for (std::int32_t i = 0; i < h.ncand; ++i) {
            EdgeMsg cand;
            std::memcpy(&cand, all.data() + o, sizeof(cand));
            o += sizeof(cand);
            cands.push_back(cand);
          }
          for (std::int32_t i = 0; i < h.nedges; ++i) {
            TreeEdgeMsg te;
            std::memcpy(&te, all.data() + o, sizeof(te));
            o += sizeof(te);
            all_edges.push_back(te);
          }
        }
        if (o != all.size()) {
          throw std::logic_error("mst: endgame gather size mismatch");
        }

        // Kruskal over the contracted component graph.
        std::sort(cands.begin(), cands.end(),
                  [](const EdgeMsg& x, const EdgeMsg& y) {
                    return EdgeKey::make(x.w, x.gu, x.gv) <
                           EdgeKey::make(y.w, y.gu, y.gv);
                  });
        std::unordered_map<int, int> dense;
        auto dense_id = [&](int lbl) {
          auto [it, fresh] =
              dense.emplace(lbl, static_cast<int>(dense.size()));
          return it->second;
        };
        for (const auto& c : cands) {
          dense_id(c.c_from);
          dense_id(c.c_to);
        }
        UnionFind comp_uf(static_cast<int>(dense.size()));
        for (const auto& c : cands) {
          if (comp_uf.unite(dense_id(c.c_from), dense_id(c.c_to))) {
            total_weight += c.w;
            ++total_count;
            if (cfg.collect_edges) {
              all_edges.push_back({c.gu, c.gv, c.w});
            }
          }
        }

        result->total_weight = total_weight;
        result->edge_count = total_count;
        if (cfg.collect_edges) {
          result->edges.clear();
          result->edges.reserve(all_edges.size());
          for (const auto& te : all_edges) {
            result->edges.push_back({te.u, te.v, te.w});
          }
        }
        fin = {total_weight, total_count};
      }
      // Direct is forced so the fan-out stays one superstep — the same
      // boundary count as the hand-rolled send loop it replaced (the tree
      // schedule would add log2(p) boundaries and shift every superstep
      // statistic the tests pin down).
      // broadcast_span itself proves delivery on every non-root rank (a
      // missing or short message throws), replacing the manual null check.
      broadcast_span(w, 0, &fin, 1, CollectiveAlgorithm::Direct);
    }
  };
}

MstParallelResult bsp_mst(const Graph& g, const std::vector<Point2>& points,
                          int nprocs, MstConfig cfg) {
  const GraphPartition part = partition_by_stripes(g, points, nprocs);
  MstParallelResult result;
  Config rc;
  rc.nprocs = nprocs;
  Runtime rt(rc);
  rt.run(make_mst_program(part, cfg, &result));
  return result;
}

}  // namespace gbsp
