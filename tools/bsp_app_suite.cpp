// bsp_app_suite: runs the application suite (Cannon matmul, parallel MST,
// sample sort) on ONE Runtime and verifies every output — the binary that
// proves the cross-process backends (TCP and shared-memory) carry real
// application traffic, not just microbenchmarks.
//
//   bsp_launch -p 4 -- bsp_app_suite --transport tcp      # one process/rank
//   bsp_launch -p 4 --transport shm -- bsp_app_suite --transport shm
//   bsp_app_suite --procs 4 [--transport socket]          # in-process
//
// Under bsp_launch each rank is a separate OS process, so "shared" inputs
// are shared by CONSTRUCTION: every rank builds bit-identical inputs from
// the same seeds, and each rank verifies the output region it owns (plus a
// collective cross-check where ownership is data-dependent). In-process,
// the inputs genuinely are shared and the single process verifies all of
// the output. Exit status 0 only if every app verifies.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/matmul/matmul.hpp"
#include "apps/mst/mst.hpp"
#include "apps/sort/sample_sort.hpp"
#include "core/collectives.hpp"
#include "core/runtime.hpp"
#include "core/transport.hpp"
#include "graph/geometric.hpp"
#include "graph/kruskal.hpp"
#include "graph/partition.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const char* app, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "bsp_app_suite: %s: FAILED — %s\n", app, what);
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbsp;
  CliArgs args(argc, argv);
  Config cfg;
  int rank = 0;
  bool process_mode = false;
  try {
    cfg.delivery = delivery_from_string(args.get_string("transport", "deferred"));
    if (cfg.delivery == DeliveryStrategy::Tcp ||
        cfg.delivery == DeliveryStrategy::Shm) {
      const DeliveryStrategy want = cfg.delivery;
      if (!configure_proc_from_env(cfg) || cfg.delivery != want) {
        std::fprintf(stderr,
                     "--transport %s needs the matching bsp_launch rank "
                     "environment; run e.g.\n  bsp_launch -p 4 --transport "
                     "%s -- %s --transport %s\n",
                     to_string(want), to_string(want), argv[0],
                     to_string(want));
        return 1;
      }
      rank = cfg.delivery == DeliveryStrategy::Tcp ? cfg.tcp_rank
                                                   : cfg.shm_rank;
      process_mode = true;
    } else {
      cfg.nprocs = static_cast<int>(args.get_int("procs", 4));
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const int p = cfg.nprocs;
  const bool chatty = rank == 0;
  Runtime rt(cfg);
  if (chatty) {
    std::printf("app suite: p=%d, transport=%s (%s)\n", p,
                rt.transport().name(),
                process_mode ? "one OS process per rank" : "in-process");
  }

  // ---- 1. Cannon matmul, broadcast operand layout -------------------------
  // Every rank constructs the same A and B from the same seeds; only rank
  // 0's values are read (the broadcast layout), making this the layout that
  // works when there is no shared memory to read the operands from.
  {
    const int n = 48;
    const Matrix A = random_matrix(n, 1001);
    const Matrix B = random_matrix(n, 1002);
    Matrix C(n);
    rt.run(make_cannon_broadcast_program(A, B, &C));
    const Matrix ref = matmul_blocked(A, B);
    const int q = cannon_active_grid_dim(p, n);
    const int bn = n / q;
    double err = 0.0;
    if (process_mode) {
      // This process holds only its own C block (or none, outside the grid).
      if (rank < q * q) {
        const int x = rank / q, y = rank % q;
        for (int i = x * bn; i < (x + 1) * bn; ++i) {
          for (int j = y * bn; j < (y + 1) * bn; ++j) {
            err = std::max(err, std::abs(C.at(i, j) - ref.at(i, j)));
          }
        }
      }
    } else {
      err = C.max_abs_diff(ref);
    }
    check(err < 1e-10 * n, "cannon", "block product deviates from reference");
    if (chatty) std::printf("  cannon %dx%d on a %dx%d grid: ok\n", n, n, q, q);
  }

  // ---- 2. Parallel MST ----------------------------------------------------
  // Same geometric graph on every rank (seeded), stripes partition; the
  // endgame gathers onto rank 0, which verifies against local Kruskal.
  {
    const int nodes = 800;
    const GeometricGraph gg = make_geometric_graph(nodes, 77);
    const GraphPartition part = partition_by_stripes(gg.graph, gg.points, p);
    MstParallelResult result;
    rt.run(make_mst_program(part, MstConfig{}, &result));
    if (rank == 0) {
      const MstResult ref = kruskal_mst(gg.graph);
      check(result.edge_count == nodes - 1, "mst", "wrong edge count");
      check(std::abs(result.total_weight - ref.total_weight) <
                1e-9 * std::max(1.0, ref.total_weight),
            "mst", "weight deviates from Kruskal");
      std::printf("  mst over %d nodes: ok (weight %.6f)\n", nodes,
                  result.total_weight);
    }
  }

  // ---- 3. Sample sort -----------------------------------------------------
  // Shared-by-construction input; each rank writes its bucket's run at the
  // correct global offset. Keys are forced odd (nonzero) so unwritten zeros
  // are distinguishable, letting each rank verify its written region against
  // the reference and the run collectively verify full coverage.
  {
    const std::size_t n = std::size_t{1} << 14;
    std::vector<std::uint64_t> input(n);
    Xoshiro256 rng(4242);
    for (auto& k : input) k = rng.next() | 1;
    std::vector<std::uint64_t> ref = input;
    std::sort(ref.begin(), ref.end());
    std::vector<std::uint64_t> out(n, 0);
    rt.run(make_sample_sort_program(input, &out));
    bool region_ok = true;
    std::int64_t written = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (out[i] == 0) continue;
      ++written;
      if (out[i] != ref[i]) region_ok = false;
    }
    check(region_ok, "sort", "a written key disagrees with the reference");
    // Coverage cross-check. In-process every rank writes into the one shared
    // output, so `written` is already the full count; across processes each
    // rank holds only its own run, and the per-rank counts must tile n.
    std::int64_t total = written;
    if (process_mode && p > 1) {
      rt.run([&](Worker& w) {
        const auto counts = allgather(w, written);
        total = 0;
        for (const auto c : counts) total += c;
      });
    }
    check(total == static_cast<std::int64_t>(n), "sort",
          "ranks' written regions do not cover the input");
    if (chatty) std::printf("  sample sort of %zu keys: ok\n", n);
  }

  if (g_failures != 0) {
    std::fprintf(stderr, "bsp_app_suite: rank %d: %d failure(s)\n", rank,
                 g_failures);
    return 1;
  }
  if (chatty) std::printf("app suite: all apps verified\n");
  return 0;
}
