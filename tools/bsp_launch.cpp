// bsp_launch: the rank runner of the tcp transport — the piece of the
// paper's Appendix B.3 PC-LAN setup that started one BSP process per
// machine. Here all p ranks land on one host (loopback) unless the program
// is pointed elsewhere; the runner's only job is process lifecycle and the
// rank environment:
//
//   bsp_launch -p 4 [--host H] [--port BASE] [--timeout-ms T] [--] prog args...
//
// forks p children, each exec'ing `prog args...` with
//
//   GBSP_RANK=<r>  GBSP_NPROCS=<p>  GBSP_HOST=<H>  GBSP_PORT=<BASE>
//   GBSP_CONNECT_TIMEOUT_MS=<T>
//
// which configure_tcp_from_env (core/transport.hpp) turns into a
// Config{delivery=Tcp, nprocs, tcp_*}. Rank r then listens on BASE + r and
// the ranks bootstrap their full mesh themselves (core/mesh.hpp).
//
// Exit policy: wait for every rank; the run's exit status is the first
// failing rank's (128 + signal for a signalled child). Once one rank fails,
// the rest are SIGTERMed — their peer connections are dead anyway, and a
// wedged survivor would otherwise hold the launcher until its own stage
// timeout fires.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -p <nprocs> [--host <ipv4>] [--port <base>] "
      "[--timeout-ms <ms>] [--] <program> [args...]\n"
      "\n"
      "Runs <program> as nprocs cooperating BSP ranks over TCP: rank r is\n"
      "exec'd with GBSP_RANK=r, GBSP_NPROCS, GBSP_HOST (default 127.0.0.1),\n"
      "GBSP_PORT (default 47100; rank r listens on port+r) and\n"
      "GBSP_CONNECT_TIMEOUT_MS (default 10000) in its environment.\n",
      argv0);
}

long parse_long(const char* flag, const char* raw, long lo, long hi) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "bsp_launch: %s expects an integer in [%ld, %ld], got \"%s\"\n",
                 flag, lo, hi, raw);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int nprocs = 0;
  std::string host = "127.0.0.1";
  long port = 47100;
  long timeout_ms = 10'000;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-p" || a == "--nprocs") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      nprocs = static_cast<int>(parse_long("-p", argv[++i], 1, 1 << 12));
    } else if (a == "--host") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      host = argv[++i];
    } else if (a == "--port") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      port = parse_long("--port", argv[++i], 1, 65535);
    } else if (a == "--timeout-ms") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      timeout_ms = parse_long("--timeout-ms", argv[++i], 1, 3'600'000);
    } else if (a == "--") {
      ++i;
      break;
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bsp_launch: unknown flag \"%s\"\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else {
      break;  // first positional: the program
    }
  }
  if (nprocs == 0 || i >= argc) {
    usage(argv[0]);
    return 2;
  }
  if (port + nprocs - 1 > 65535) {
    std::fprintf(stderr,
                 "bsp_launch: port window %ld..%ld exceeds 65535 "
                 "(lower --port or -p)\n",
                 port, port + nprocs - 1);
    return 2;
  }

  std::vector<pid_t> kids(static_cast<std::size_t>(nprocs), -1);
  for (int r = 0; r < nprocs; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("bsp_launch: fork");
      for (int k = 0; k < r; ++k) ::kill(kids[static_cast<std::size_t>(k)], SIGTERM);
      return 1;
    }
    if (pid == 0) {
      // Child: rank r. setenv + execvp keeps the parent's environment
      // (PATH, sanitizer options) and overlays the rank variables.
      ::setenv("GBSP_RANK", std::to_string(r).c_str(), 1);
      ::setenv("GBSP_NPROCS", std::to_string(nprocs).c_str(), 1);
      ::setenv("GBSP_HOST", host.c_str(), 1);
      ::setenv("GBSP_PORT", std::to_string(port).c_str(), 1);
      ::setenv("GBSP_CONNECT_TIMEOUT_MS", std::to_string(timeout_ms).c_str(),
               1);
      ::execvp(argv[i], argv + i);
      std::fprintf(stderr, "bsp_launch: exec %s: %s\n", argv[i],
                   std::strerror(errno));
      std::_Exit(127);
    }
    kids[static_cast<std::size_t>(r)] = pid;
  }

  // Reap in completion order so the FIRST failure wins the run's status and
  // triggers the teardown of the survivors.
  int exit_status = 0;
  int live = nprocs;
  bool tore_down = false;
  while (live > 0) {
    int wstatus = 0;
    const pid_t pid = ::waitpid(-1, &wstatus, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    int rank = -1;
    for (int r = 0; r < nprocs; ++r) {
      if (kids[static_cast<std::size_t>(r)] == pid) { rank = r; break; }
    }
    if (rank < 0) continue;  // not one of ours (reparented grandchild)
    kids[static_cast<std::size_t>(rank)] = -1;
    --live;
    int rc = 0;
    if (WIFEXITED(wstatus)) {
      rc = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
      rc = 128 + WTERMSIG(wstatus);
      std::fprintf(stderr, "bsp_launch: rank %d killed by signal %d\n", rank,
                   WTERMSIG(wstatus));
    }
    if (rc != 0 && exit_status == 0) {
      exit_status = rc;
      if (rc != 128 + SIGTERM) {
        std::fprintf(stderr, "bsp_launch: rank %d exited with status %d\n",
                     rank, rc);
      }
    }
    if (exit_status != 0 && !tore_down) {
      tore_down = true;
      for (int r = 0; r < nprocs; ++r) {
        if (kids[static_cast<std::size_t>(r)] >= 0) {
          ::kill(kids[static_cast<std::size_t>(r)], SIGTERM);
        }
      }
    }
  }
  return exit_status;
}
