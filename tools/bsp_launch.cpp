// bsp_launch: the rank runner of the cross-process transports — the piece of
// the paper's Appendix B.3 PC-LAN setup that started one BSP process per
// machine. Here all p ranks land on one host; the runner's only job is
// process lifecycle and the rank environment:
//
//   bsp_launch -p 4 [--transport tcp|shm] [--host H] [--port BASE]
//              [--shm-name N] [--timeout-ms T] [--timeout S] [--] prog args...
//
// forks p children, each exec'ing `prog args...` with
//
//   GBSP_RANK=<r>  GBSP_NPROCS=<p>  GBSP_TRANSPORT=<tcp|shm>
//   GBSP_HOST=<H>  GBSP_PORT=<BASE>          (tcp)
//   GBSP_SHM_NAME=<N>                        (shm)
//   GBSP_CONNECT_TIMEOUT_MS=<T>
//
// which configure_proc_from_env (core/transport.hpp) turns into a
// Config{delivery, nprocs, tcp_*/shm_*}. Over tcp, rank r listens on BASE+r;
// over shm, the ranks rendezvous on abstract AF_UNIX sockets derived from
// the shm name (default: "launch.<launcher pid>", so concurrent launches on
// one host never collide) and fd-pass their shared segments (core/mesh.hpp).
//
// Exit policy: wait for every rank; the run's exit status is the first
// failing rank's (128 + signal for a signalled child). Once one rank fails,
// the rest are SIGTERMed — their peer connections are dead anyway, and a
// wedged survivor would otherwise hold the launcher until its own stage
// timeout fires. --timeout <seconds> arms a watchdog: a run still alive at
// the deadline has its whole rank tree SIGKILLed (each rank is its own
// process group, so grandchildren die too) and the launcher exits 124.
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -p <nprocs> [--transport tcp|shm] [--host <ipv4>]\n"
      "       [--port <base>] [--shm-name <name>] [--timeout-ms <ms>]\n"
      "       [--timeout <seconds>] [--] <program> [args...]\n"
      "\n"
      "Runs <program> as nprocs cooperating BSP ranks: rank r is exec'd with\n"
      "GBSP_RANK=r, GBSP_NPROCS, GBSP_TRANSPORT (default tcp) and\n"
      "GBSP_CONNECT_TIMEOUT_MS (default 10000) in its environment, plus\n"
      "GBSP_HOST (default 127.0.0.1) and GBSP_PORT (default 47100; rank r\n"
      "listens on port+r) over tcp, or GBSP_SHM_NAME (default\n"
      "launch.<launcher pid>) over shm. --timeout SIGKILLs the whole rank\n"
      "tree if the run outlives the deadline (launcher exits 124).\n",
      argv0);
}

long parse_long(const char* flag, const char* raw, long lo, long hi) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "bsp_launch: %s expects an integer in [%ld, %ld], got \"%s\"\n",
                 flag, lo, hi, raw);
    std::exit(2);
  }
  return v;
}

double now_s() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace

int main(int argc, char** argv) {
  int nprocs = 0;
  std::string transport = "tcp";
  std::string host = "127.0.0.1";
  std::string shm_name;
  long port = 47100;
  long timeout_ms = 10'000;
  long watchdog_s = 0;  // 0 = no watchdog
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-p" || a == "--nprocs") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      nprocs = static_cast<int>(parse_long("-p", argv[++i], 1, 1 << 12));
    } else if (a == "--transport") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      transport = argv[++i];
      if (transport != "tcp" && transport != "shm") {
        std::fprintf(stderr,
                     "bsp_launch: --transport expects tcp or shm, got \"%s\"\n",
                     transport.c_str());
        return 2;
      }
    } else if (a == "--host") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      host = argv[++i];
    } else if (a == "--port") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      port = parse_long("--port", argv[++i], 1, 65535);
    } else if (a == "--shm-name") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      shm_name = argv[++i];
    } else if (a == "--timeout-ms") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      timeout_ms = parse_long("--timeout-ms", argv[++i], 1, 3'600'000);
    } else if (a == "--timeout") {
      if (i + 1 >= argc) { usage(argv[0]); return 2; }
      watchdog_s = parse_long("--timeout", argv[++i], 1, 86'400);
    } else if (a == "--") {
      ++i;
      break;
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bsp_launch: unknown flag \"%s\"\n", a.c_str());
      usage(argv[0]);
      return 2;
    } else {
      break;  // first positional: the program
    }
  }
  if (nprocs == 0 || i >= argc) {
    usage(argv[0]);
    return 2;
  }
  if (transport == "tcp" && port + nprocs - 1 > 65535) {
    std::fprintf(stderr,
                 "bsp_launch: port window %ld..%ld exceeds 65535 "
                 "(lower --port or -p)\n",
                 port, port + nprocs - 1);
    return 2;
  }
  if (shm_name.empty()) {
    // Unique per launch so concurrent runs on one host never rendezvous
    // with each other's ranks.
    shm_name = "launch." + std::to_string(static_cast<long>(::getpid()));
  }

  std::vector<pid_t> kids(static_cast<std::size_t>(nprocs), -1);
  for (int r = 0; r < nprocs; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("bsp_launch: fork");
      for (int k = 0; k < r; ++k) ::kill(kids[static_cast<std::size_t>(k)], SIGTERM);
      return 1;
    }
    if (pid == 0) {
      // Child: rank r, leading its own process group so the watchdog's
      // kill(-pid) reaches anything the rank itself spawns.
      ::setpgid(0, 0);
      // setenv + execvp keeps the parent's environment (PATH, sanitizer
      // options) and overlays the rank variables.
      ::setenv("GBSP_RANK", std::to_string(r).c_str(), 1);
      ::setenv("GBSP_NPROCS", std::to_string(nprocs).c_str(), 1);
      ::setenv("GBSP_TRANSPORT", transport.c_str(), 1);
      if (transport == "shm") {
        ::setenv("GBSP_SHM_NAME", shm_name.c_str(), 1);
      } else {
        ::setenv("GBSP_HOST", host.c_str(), 1);
        ::setenv("GBSP_PORT", std::to_string(port).c_str(), 1);
      }
      ::setenv("GBSP_CONNECT_TIMEOUT_MS", std::to_string(timeout_ms).c_str(),
               1);
      ::execvp(argv[i], argv + i);
      std::fprintf(stderr, "bsp_launch: exec %s: %s\n", argv[i],
                   std::strerror(errno));
      std::_Exit(127);
    }
    ::setpgid(pid, pid);  // parent side of the race: win either way
    kids[static_cast<std::size_t>(r)] = pid;
  }

  // Reap in completion order so the FIRST failure wins the run's status and
  // triggers the teardown of the survivors. With a watchdog armed, the wait
  // is a WNOHANG poll against the deadline instead of a blocking reap.
  const double deadline = watchdog_s > 0
                              ? now_s() + static_cast<double>(watchdog_s)
                              : 0.0;
  int exit_status = 0;
  int live = nprocs;
  bool tore_down = false;
  bool timed_out = false;
  while (live > 0) {
    int wstatus = 0;
    pid_t pid;
    if (watchdog_s > 0) {
      pid = ::waitpid(-1, &wstatus, WNOHANG);
      if (pid == 0) {
        if (!timed_out && now_s() >= deadline) {
          timed_out = true;
          exit_status = 124;
          std::fprintf(stderr,
                       "bsp_launch: run exceeded --timeout %lds, killing the "
                       "rank tree\n",
                       watchdog_s);
          for (int r = 0; r < nprocs; ++r) {
            const pid_t k = kids[static_cast<std::size_t>(r)];
            if (k >= 0) ::kill(-k, SIGKILL);  // the rank's whole group
          }
        }
        ::usleep(20'000);
        continue;
      }
    } else {
      pid = ::waitpid(-1, &wstatus, 0);
    }
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    int rank = -1;
    for (int r = 0; r < nprocs; ++r) {
      if (kids[static_cast<std::size_t>(r)] == pid) { rank = r; break; }
    }
    if (rank < 0) continue;  // not one of ours (reparented grandchild)
    kids[static_cast<std::size_t>(rank)] = -1;
    --live;
    int rc = 0;
    if (WIFEXITED(wstatus)) {
      rc = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
      rc = 128 + WTERMSIG(wstatus);
      if (!timed_out) {
        std::fprintf(stderr, "bsp_launch: rank %d killed by signal %d\n", rank,
                     WTERMSIG(wstatus));
      }
    }
    if (rc != 0 && exit_status == 0) {
      exit_status = rc;
      if (rc != 128 + SIGTERM) {
        std::fprintf(stderr, "bsp_launch: rank %d exited with status %d\n",
                     rank, rc);
      }
    }
    if (exit_status != 0 && !tore_down && !timed_out) {
      tore_down = true;
      for (int r = 0; r < nprocs; ++r) {
        if (kids[static_cast<std::size_t>(r)] >= 0) {
          ::kill(kids[static_cast<std::size_t>(r)], SIGTERM);
        }
      }
    }
  }
  return exit_status;
}
